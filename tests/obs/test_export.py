"""Exporters: Chrome trace, JSONL, Prometheus text, trace summary."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    chrome_trace_events,
    format_trace_summary,
    parse_prometheus,
    prometheus_text,
    read_chrome_trace,
    summarize_trace,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def _sample_tracer():
    tr = Tracer()
    with tr.span("run"):
        with tr.span("batch", index=0):
            tr.record("map_task", 1.0, 1.25, pid=99, task_id=0,
                      batch=0, attempt=0)
            tr.record("map_task", 1.0, 1.05, pid=98, task_id=1,
                      batch=0, attempt=1)
            with tr.span("shuffle"):
                pass
            tr.record("reduce_task", 1.3, 1.4, pid=99, task_id=0,
                      batch=0, attempt=0)
    return tr


def test_chrome_trace_events_structure():
    tr = _sample_tracer()
    events = chrome_trace_events(tr.spans)
    assert len(events) == len(tr.spans)
    for ev in events:
        assert ev["ph"] == "X"
        assert ev["ts"] >= 0 and ev["dur"] >= 0
        assert "span_id" in ev["args"]
    stitched = [e for e in events if e["name"] == "map_task"]
    assert {e["pid"] for e in stitched} == {98, 99}
    # microsecond conversion
    assert stitched[0]["dur"] == pytest.approx(0.25 * 1e6)


def test_chrome_trace_roundtrip(tmp_path):
    tr = _sample_tracer()
    path = write_chrome_trace(tr.spans, tmp_path / "trace.json")
    data = json.loads(path.read_text())
    assert "traceEvents" in data
    events = read_chrome_trace(path)
    assert len(events) == len(tr.spans)


def test_read_chrome_trace_rejects_malformed(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
    with pytest.raises(ValueError, match="missing"):
        read_chrome_trace(bad)
    not_list = tmp_path / "notlist.json"
    not_list.write_text(json.dumps({"traceEvents": "nope"}))
    with pytest.raises(ValueError, match="not a list"):
        read_chrome_trace(not_list)


def test_jsonl_has_span_then_metric_lines(tmp_path):
    tr = _sample_tracer()
    reg = MetricsRegistry()
    reg.counter("prompt_batches_total", "batches").inc(3)
    path = write_jsonl(tmp_path / "run.jsonl", tr.spans, reg)
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    kinds = [l["type"] for l in lines]
    assert kinds == ["span"] * len(tr.spans) + ["metric"]
    assert lines[-1] == {
        "type": "metric", "name": "prompt_batches_total", "value": 3.0
    }


def test_prometheus_text_and_parser_roundtrip():
    reg = MetricsRegistry()
    reg.counter("prompt_batches_total", "batches processed").inc(12)
    reg.gauge("prompt_partition_bsi", labels={"technique": "prompt"}).set(0.93)
    h = reg.histogram("prompt_batch_latency_seconds", "latency",
                      buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    text = prometheus_text(reg)
    assert "# TYPE prompt_batches_total counter" in text
    assert "# HELP prompt_batches_total batches processed" in text
    assert 'prompt_partition_bsi{technique="prompt"} 0.93' in text
    assert 'prompt_batch_latency_seconds_bucket{le="+Inf"} 3' in text
    samples = parse_prometheus(text)
    assert samples["prompt_batches_total"] == 12.0
    assert samples['prompt_batch_latency_seconds_bucket{le="0.1"}'] == 1.0
    assert samples['prompt_batch_latency_seconds_bucket{le="1"}'] == 2.0
    assert samples["prompt_batch_latency_seconds_count"] == 3.0


def test_parse_prometheus_rejects_garbage():
    with pytest.raises(ValueError):
        parse_prometheus("prompt_thing not-a-number\n")
    with pytest.raises(ValueError):
        parse_prometheus("lonely\n")


def test_write_prometheus(tmp_path):
    reg = MetricsRegistry()
    reg.counter("x_total").inc()
    path = write_prometheus(reg, tmp_path / "m.prom")
    assert parse_prometheus(path.read_text())["x_total"] == 1.0


def test_summarize_trace_and_format(tmp_path):
    tr = _sample_tracer()
    path = write_chrome_trace(tr.spans, tmp_path / "t.json")
    summary = summarize_trace(path, top_k=2)
    assert summary["phases"]["map_task"]["count"] == 2
    assert summary["phases"]["map_task"]["max_s"] == pytest.approx(0.25)
    slowest = summary["slowest_tasks"]
    assert len(slowest) == 2
    # ordered slowest-first, carrying the attempt tag through
    assert slowest[0]["duration_s"] >= slowest[1]["duration_s"]
    assert slowest[0]["phase"] == "map_task"
    assert slowest[0]["attempt"] == 0
    text = format_trace_summary(summary)
    assert "per-phase breakdown:" in text
    assert "slowest tasks:" in text
    assert "map_task[0]" in text
    # eager traces have no plan_emit/map_dispatch spans: section omitted
    assert summary["dispatch"]["plan_emits"] == 0
    assert summary["dispatch"]["batches"] == []
    assert "dispatch:" not in text


def test_summarize_trace_dispatch_section(tmp_path):
    """A streamed trace yields per-batch first/last dispatch + overlap."""
    tr = Tracer()
    with tr.span("run"):
        with tr.span("batch", index=0):
            # plan tail interleaved with two block dispatches
            tr.record("plan_emit", 1.0, 1.2, batch=0)
            tr.record("map_dispatch", 1.2, 1.25, batch=0, task_id=0)
            tr.record("plan_emit", 1.25, 1.6, batch=0)
            tr.record("map_dispatch", 1.6, 1.62, batch=0, task_id=1)
            tr.record("plan_emit", 1.62, 1.9, batch=0)  # final (None) probe
    path = write_chrome_trace(tr.spans, tmp_path / "s.json")
    summary = summarize_trace(path)
    dispatch = summary["dispatch"]
    assert dispatch["plan_emits"] == 3
    assert dispatch["map_dispatches"] == 2
    assert dispatch["plan_emit_total_s"] == pytest.approx(0.2 + 0.35 + 0.28)
    [row] = dispatch["batches"]
    assert row["batch"] == 0
    assert row["blocks_dispatched"] == 2
    assert row["first_dispatch_ts_s"] == pytest.approx(1.2)
    assert row["last_dispatch_ts_s"] == pytest.approx(1.62)
    # plan ended at 1.9, first Map went in flight at 1.2
    assert row["overlap_s"] == pytest.approx(0.7)
    text = format_trace_summary(summary)
    assert "dispatch:" in text
    assert "plan emissions" in text
    assert "batch=0 blocks=2" in text
