"""Late-tuple contract: classification, dropping, delayed sources."""

from __future__ import annotations

import pytest

from repro.core.batch import BatchInfo
from repro.core.tuples import StreamTuple
from repro.engine.engine import EngineConfig, MicroBatchEngine
from repro.engine.cluster import ClusterConfig
from repro.engine.lateness import LatenessConfig, LatenessMonitor
from repro.partitioners import make_partitioner
from repro.queries import wordcount_query
from repro.workloads.arrival import ConstantRate
from repro.workloads.late import DelayedSource
from repro.workloads.synd import synd_source

INFO = BatchInfo(index=2, t_start=2.0, t_end=3.0)


def _t(ts, key="k"):
    return StreamTuple(ts=ts, key=key)


def test_lateness_config_validation():
    with pytest.raises(ValueError):
        LatenessConfig(max_delay=-0.1)


def test_monitor_classifies_three_ways():
    monitor = LatenessMonitor(LatenessConfig(max_delay=0.2))
    admitted = monitor.admit(
        [_t(2.5), _t(1.9), _t(1.5)], INFO
    )
    assert monitor.on_time == 1
    assert monitor.late_accepted == 1  # 1.9 within 0.2 of batch start
    assert monitor.overdue == 1       # 1.5 is beyond the contract
    assert [t.ts for t in admitted] == [2.5, 1.9]
    assert monitor.drop_rate() == pytest.approx(1 / 3)


def test_monitor_can_keep_overdue_tuples():
    monitor = LatenessMonitor(LatenessConfig(max_delay=0.1, drop_overdue=False))
    admitted = monitor.admit([_t(0.5)], INFO)
    assert monitor.overdue == 1
    assert len(admitted) == 1


def test_monitor_zero_delay_contract():
    monitor = LatenessMonitor(LatenessConfig(max_delay=0.0))
    admitted = monitor.admit([_t(2.0), _t(1.999999)], INFO)
    assert monitor.on_time == 1
    assert monitor.overdue == 1
    assert len(admitted) == 1


def test_empty_batch_drop_rate():
    monitor = LatenessMonitor(LatenessConfig(max_delay=0.1))
    assert monitor.drop_rate() == 0.0


# ----------------------------------------------------------------------
# DelayedSource
# ----------------------------------------------------------------------
def _delayed(max_delay=0.3, fraction=0.3, seed=1):
    base = synd_source(0.8, num_keys=100, arrival=ConstantRate(1_000.0), seed=seed)
    return DelayedSource(
        base, max_delay=max_delay, delayed_fraction=fraction, seed=seed
    )


def test_delayed_source_validation():
    base = synd_source(0.5, rate=10.0)
    with pytest.raises(ValueError):
        DelayedSource(base, max_delay=-1.0)
    with pytest.raises(ValueError):
        DelayedSource(base, max_delay=1.0, delayed_fraction=2.0)


def test_delayed_source_conserves_tuples():
    source = _delayed()
    total = sum(len(source.tuples_between(float(k), float(k + 1))) for k in range(5))
    # everything stamped in [0,5) is ingested by 5 + max_delay
    tail = source.tuples_between(5.0, 6.0)
    stamped_early = [t for t in tail if t.ts < 5.0]
    assert total + len(stamped_early) >= 5_000


def test_delayed_source_produces_disorder():
    source = _delayed()
    tuples = source.tuples_between(0.0, 2.0)
    ts = [t.ts for t in tuples]
    assert ts != sorted(ts)  # some tuples arrive out of timestamp order


def test_delayed_source_respects_max_delay():
    source = _delayed(max_delay=0.25)
    for k in range(4):
        for t in source.tuples_between(float(k), float(k + 1)):
            assert t.ts > k - 0.25 - 1e-9


def test_delayed_source_zero_fraction_is_in_order():
    source = _delayed(fraction=0.0)
    tuples = source.tuples_between(0.0, 2.0)
    ts = [t.ts for t in tuples]
    assert ts == sorted(ts)


def test_delayed_source_reset_replays():
    source = _delayed()
    a = [t.key for t in source.tuples_between(0.0, 1.0)]
    source.reset()
    b = [t.key for t in source.tuples_between(0.0, 1.0)]
    assert a == b


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------
def test_engine_enforces_delay_contract():
    config = EngineConfig(
        batch_interval=0.5,
        num_blocks=2,
        num_reducers=2,
        cluster=ClusterConfig(num_nodes=1, cores_per_node=4),
        lateness=LatenessConfig(max_delay=0.05),
        track_outputs=False,
    )
    engine = MicroBatchEngine(make_partitioner("hash"), wordcount_query(), config)
    result = engine.run(_delayed(max_delay=0.4, fraction=0.4, seed=3), 8)
    assert result.lateness is not None
    assert result.lateness.on_time > 0
    assert result.lateness.late_accepted > 0
    assert result.lateness.overdue > 0  # 0.4s delays exceed the 0.05 contract
    processed = result.stats.total_tuples
    assert processed == result.lateness.on_time + result.lateness.late_accepted


def test_engine_without_contract_has_no_monitor():
    config = EngineConfig(batch_interval=0.5, num_blocks=2, num_reducers=2,
                          track_outputs=False)
    engine = MicroBatchEngine(make_partitioner("hash"), wordcount_query(), config)
    result = engine.run(_delayed(seed=4), 3)
    assert result.lateness is None
