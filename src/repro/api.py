"""The public entry point: :func:`repro.run`, :class:`RunSpec`, topologies.

v1 makes the *shape* of a run a first-class concept.  A
:class:`Topology` says how many engines execute the stream:

- :class:`SingleEngine` (the default) — one
  :class:`~repro.engine.engine.MicroBatchEngine`, exactly the v0
  behaviour;
- :class:`Sharded` — a deterministic router fans a multi-tenant stream
  across N independent engines
  (:class:`~repro.engine.sharding.ShardedEngine`).

Both shapes share one entry point::

    import repro
    from repro.queries import wordcount_query
    from repro.workloads import MultiTenantSource, tweets_source

    # single engine (v1: engine config travels as a typed object)
    result = repro.run(
        tweets_source(rate=5_000.0, seed=42),
        wordcount_query(window_length=10.0),
        engine=repro.EngineConfig(executor="parallel"),
    )

    # sharded: four engines behind a consistent-hash router
    result = repro.run(
        union,                       # a MultiTenantSource
        wordcount_query(window_length=10.0),
        topology=repro.Sharded(shards=4, router="consistent-hash"),
    )

:class:`RunSpec` is the typed builder behind :func:`run` — construct
one directly (or via ``with_*`` methods) to stage, inspect, or reuse a
fully-specified run.

v0 compatibility: ``repro.run(..., executor="parallel", num_blocks=16)``
— engine-config fields as loose keyword arguments — still works and
emits a single :class:`DeprecationWarning` per process pointing at the
typed form.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Union

from .engine import EngineConfig, MicroBatchEngine, RunResult
from .engine.faults import TaskFaultInjector
from .engine.sharding import Rebalance, ShardedEngine, ShardedRunResult
from .partitioners import make_partitioner
from .partitioners.base import Partitioner
from .queries.base import Query
from .workloads.source import StreamSource

__all__ = ["RunSpec", "Sharded", "SingleEngine", "Topology", "run"]


class Topology:
    """Base class for run shapes: how many engines execute the stream.

    Not the cluster-placement
    :class:`~repro.engine.topology.ClusterTopology` — a ``Topology``
    describes the driver tier (one engine vs. a sharded fleet), not
    where blocks land inside one engine's cluster.
    """

    __slots__ = ()


@dataclass(frozen=True)
class SingleEngine(Topology):
    """One micro-batch engine owns the whole stream (the v0 shape)."""


@dataclass(frozen=True)
class Sharded(Topology):
    """N independent engines behind a deterministic shard router.

    The source must be tenant-tagged (wrap per-tenant streams in
    :class:`~repro.workloads.tenants.MultiTenantSource`); ``router`` is
    any of :data:`~repro.engine.sharding.ROUTER_NAMES`.  ``rebalances``
    pre-declares tenant migrations (see
    :class:`~repro.engine.sharding.Rebalance`) and ``shard_faults``
    carries shard-scoped
    :class:`~repro.engine.faults.TaskFaultInjector` profiles.
    """

    shards: int = 4
    router: str = "hash"
    rebalances: tuple[Rebalance, ...] = ()
    shard_faults: tuple[TaskFaultInjector, ...] = ()

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")


@dataclass(frozen=True)
class RunSpec:
    """A fully-specified run: source, query, technique, shape, config.

    The typed replacement for v0's ``**engine_config`` grab-bag.  Frozen
    — the ``with_*`` builders return updated copies, so a spec can be
    staged, varied, and reused::

        spec = repro.RunSpec(source, query).with_engine(executor="parallel")
        baseline = spec.run()
        sharded = spec.with_topology(repro.Sharded(shards=4)).run()
    """

    source: StreamSource
    query: Query
    partitioner: str | Partitioner = "prompt"
    num_batches: int = 10
    topology: Topology = field(default_factory=SingleEngine)
    engine: EngineConfig = field(default_factory=EngineConfig)

    def __post_init__(self) -> None:
        if self.num_batches < 1:
            raise ValueError(f"num_batches must be >= 1, got {self.num_batches}")
        if not isinstance(self.topology, Topology):
            raise TypeError(
                f"topology must be a Topology (SingleEngine or Sharded), "
                f"got {self.topology!r}"
            )

    # -- builders --------------------------------------------------------
    def with_engine(self, **fields: Any) -> "RunSpec":
        """A copy with engine-config fields updated over the current ones."""
        return replace(self, engine=replace(self.engine, **fields))

    def with_topology(self, topology: Topology) -> "RunSpec":
        return replace(self, topology=topology)

    def with_partitioner(self, partitioner: str | Partitioner) -> "RunSpec":
        return replace(self, partitioner=partitioner)

    def with_batches(self, num_batches: int) -> "RunSpec":
        return replace(self, num_batches=num_batches)

    # -- execution -------------------------------------------------------
    def run(self) -> Union[RunResult, ShardedRunResult]:
        """Execute the spec; the topology decides the result type."""
        if isinstance(self.topology, Sharded):
            sharded = ShardedEngine(
                self.partitioner,
                self.query,
                self.engine,
                num_shards=self.topology.shards,
                router=self.topology.router,
                rebalances=self.topology.rebalances,
                shard_faults=self.topology.shard_faults,
            )
            return sharded.run(self.source, num_batches=self.num_batches)
        partitioner = self.partitioner
        if isinstance(partitioner, str):
            partitioner = make_partitioner(partitioner)
        engine = MicroBatchEngine(partitioner, self.query, self.engine)
        return engine.run(self.source, num_batches=self.num_batches)


# one warning per process, like any well-behaved deprecation
_v0_kwargs_warned = False


def _warn_v0_kwargs(config: dict[str, Any]) -> None:
    global _v0_kwargs_warned
    if _v0_kwargs_warned:
        return
    _v0_kwargs_warned = True
    keys = ", ".join(sorted(config))
    warnings.warn(
        f"passing engine-config fields to repro.run as loose keyword "
        f"arguments ({keys}) is deprecated since v1; pass "
        f"engine=repro.EngineConfig(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def run(
    source: StreamSource,
    query: Query,
    partitioner: str | Partitioner = "prompt",
    num_batches: int = 10,
    *,
    topology: Topology | None = None,
    engine: EngineConfig | None = None,
    **engine_config: Any,
) -> Union[RunResult, ShardedRunResult]:
    """Run ``query`` over ``num_batches`` batch intervals of ``source``.

    ``partitioner`` is a registry name (any of
    :data:`~repro.partitioners.PARTITIONER_NAMES`) or a constructed
    :class:`~repro.partitioners.base.Partitioner`.  ``topology`` selects
    the run shape (:class:`SingleEngine` default, or :class:`Sharded`
    over a multi-tenant source); ``engine`` carries the typed
    :class:`~repro.engine.engine.EngineConfig`.

    Returns a :class:`~repro.engine.engine.RunResult` for single-engine
    runs, a :class:`~repro.engine.sharding.ShardedRunResult` for sharded
    ones; either way the engines (and any worker pools) are torn down
    before returning.

    Deprecated v0 form: engine-config fields as loose keyword arguments
    (``executor="parallel"``, ``num_blocks=16``, ...).  Still accepted —
    they construct the same ``EngineConfig`` — but warn once per
    process; they cannot be combined with ``engine=``.
    """
    if engine_config:
        if engine is not None:
            raise TypeError(
                "pass engine=EngineConfig(...) or v0 loose keyword "
                "arguments, not both"
            )
        _warn_v0_kwargs(engine_config)
        engine = EngineConfig(**engine_config)
    spec = RunSpec(
        source,
        query,
        partitioner=partitioner,
        num_batches=num_batches,
        topology=topology if topology is not None else SingleEngine(),
        engine=engine if engine is not None else EngineConfig(),
    )
    return spec.run()
