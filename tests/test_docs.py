"""Documentation stays in sync with the code it describes."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.cli import EXPERIMENTS
from repro.partitioners import PARTITIONER_NAMES

ROOT = Path(__file__).resolve().parents[1]


def _read(name: str) -> str:
    path = ROOT / name
    assert path.exists(), f"{name} is missing"
    return path.read_text()


def test_required_documents_exist():
    for name in (
        "README.md",
        "DESIGN.md",
        "EXPERIMENTS.md",
        "LICENSE",
        "docs/algorithms.md",
        "docs/architecture.md",
        "docs/api.md",
        "docs/observability.md",
        "docs/reproduction-notes.md",
        "docs/experiments-matrix.md",
    ):
        assert (ROOT / name).exists(), name


def test_experiments_matrix_doc_is_cross_linked():
    assert "experiments-matrix.md" in _read("docs/api.md")
    matrix_doc = _read("docs/experiments-matrix.md")
    # the doc must describe the real CLI surface and the real store file
    for needle in (
        "repro bench fill",
        "repro bench report",
        "repro bench regress",
        "repro bench ingest",
        "results.db",
        "--allow-regression",
    ):
        assert needle in matrix_doc, needle


def test_observability_doc_covers_the_metric_catalog():
    """Every metric the engine publishes is documented by name."""
    doc = _read("docs/observability.md")
    src = ROOT / "src" / "repro"
    published = set()
    for path in src.rglob("*.py"):
        published.update(re.findall(r'"(prompt_[a-z_]+)"', path.read_text()))
    assert published, "no published metric names found in src/"
    for name in sorted(published):
        assert f"`{name}`" in doc, f"{name} missing from docs/observability.md"


def test_streaming_dispatch_is_documented_everywhere():
    """The streaming-dispatch surface stays in sync across the docs."""
    arch = _read("docs/architecture.md")
    assert "## Streaming dispatch (`streaming_dispatch`)" in arch
    assert "`PlanStream`" in arch
    assert "submit_batch_stream" in arch
    api = _read("docs/api.md")
    assert "`streaming_dispatch`" in api
    assert "--streaming-dispatch" in api
    assert "bench_streaming_dispatch" in api
    obs = _read("docs/observability.md")
    for needle in ("`plan_emit`", "`map_dispatch`", "dispatch` section"):
        assert needle in obs, needle


def test_observability_doc_is_cross_linked():
    assert "observability.md" in _read("docs/architecture.md")
    assert "observability.md" in _read("docs/api.md")


def test_readme_lists_every_example():
    readme = _read("README.md")
    for script in sorted((ROOT / "examples").glob("*.py")):
        assert f"examples/{script.name}" in readme, script.name


def test_examples_exist_and_have_mains():
    scripts = list((ROOT / "examples").glob("*.py"))
    assert len(scripts) >= 3
    for script in scripts:
        text = script.read_text()
        assert 'if __name__ == "__main__":' in text, script.name
        assert text.startswith("#!/usr/bin/env python3"), script.name


def test_api_doc_mentions_every_registry_name():
    api = _read("docs/api.md")
    for name in PARTITIONER_NAMES:
        assert f"`{name}`" in api, name


def test_experiments_md_references_real_benches():
    experiments = _read("EXPERIMENTS.md")
    for match in re.finditer(r"benchmarks/(test_\w+\.py)", experiments):
        assert (ROOT / "benchmarks" / match.group(1)).exists(), match.group(0)


def test_design_md_modules_exist():
    design = _read("DESIGN.md")
    for match in re.finditer(r"`repro\.([a-z_.]+)`", design):
        dotted = match.group(1)
        rel = ROOT / "src" / "repro" / Path(*dotted.split("."))
        assert (
            rel.with_suffix(".py").exists()
            or (rel / "__init__.py").exists()
            or (ROOT / "src" / "repro" / (dotted.split(".")[0] + ".py")).exists()
        ), f"repro.{dotted} referenced in DESIGN.md but not found"


def test_cli_experiments_cover_every_paper_artifact():
    # every table/figure in the paper's evaluation has a CLI entry
    for artifact in ("table1", "fig6", "fig10", "fig11", "fig11d",
                     "fig12", "fig13", "fig14a", "fig14b"):
        assert artifact in EXPERIMENTS


def test_each_paper_figure_has_a_bench_file():
    benches = {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}
    for required in (
        "test_table1_datasets.py",
        "test_fig6_assignment_tradeoffs.py",
        "test_fig10_partitioning_metrics.py",
        "test_fig11_throughput.py",
        "test_fig12_elasticity.py",
        "test_fig13_latency_distribution.py",
        "test_fig14_overhead.py",
        "test_ablations.py",
        "test_ext_batch_sizing.py",
    ):
        assert required in benches, required
