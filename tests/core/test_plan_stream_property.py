"""Property suite: streaming plan emission vs the eager plan, bit for bit.

``Partitioner.partition_stream`` promises that the blocks it emits —
and the order it emits them in — are *identical* to the blocks the
eager :meth:`partition` call would have produced, and that the batch
returned by ``result()`` is byte-identical to the eager one.  For the
Prompt technique that promise is non-trivial: the streaming path runs
Algorithm 2's greedy assignment over zero-copy ledger blocks and
materializes each block on emission, so fragment contents, fragment
*insertion order*, split-key tables and the cross-batch accumulator
trajectory must all survive the rewrite exactly.

This suite hammers the promise with 500+ seeded random instances:
Zipf-skewed key populations across cardinalities/batch sizes/block
counts, weighted tuples, multi-batch replays with key churn (so the
adaptive accumulator history evolves along the whole trajectory), and
duplicate timestamps — on both the Python reference ingest kernel and
the vectorized numpy one.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core.batch import BatchInfo
from repro.core.plan_stream import PlanStream, eager_plan_stream
from repro.core.tuples import StreamTuple
from repro.partitioners import make_partitioner
from repro.partitioners.prompt import PromptPartitioner

#: scenarios x batches per kernel; the two kernels together clear 500
NUM_SCENARIOS = 80
BATCHES_PER_SCENARIO = 4


def _gen_batch(rng, index, n, num_keys, key_base, weighted):
    """One interval of Zipf-ish tuples with optional weights and churn."""
    t_start = float(index)
    t_end = t_start + 1.0
    ts = sorted(rng.uniform(t_start, t_end) for _ in range(n))
    if n >= 2 and rng.random() < 0.3:
        ts[n // 2] = ts[n // 2 - 1]  # duplicate timestamps
    out = []
    for i in range(n):
        rank = int(rng.paretovariate(1.1)) % num_keys
        weight = rng.randint(1, 5) if weighted else 1
        out.append(
            StreamTuple(ts=ts[i], key=f"k{key_base + rank}", weight=weight)
        )
    return out, BatchInfo(index=index, t_start=t_start, t_end=t_end)


def _block_snapshot(block, split_keys):
    return (
        block.index,
        block.size,
        block.cardinality,
        sorted(split_keys),
        [
            (key, [(t.ts, t.key, t.value, t.weight) for t in block.fragment(key)])
            for key in block.keys
        ],
    )


def _batch_snapshot(partitioner, batch):
    blocks = [
        _block_snapshot(b, {k for k in batch.split_keys if k in b})
        for b in batch.blocks
    ]
    state = None
    accumulated = getattr(partitioner, "last_batch", None)
    if accumulated is not None:
        state = (
            [(g.key, g.tracked_count, len(g.tuples)) for g in accumulated.key_groups],
            accumulated.tree_updates,
            accumulated.total_weight,
        )
    return pickle.dumps(
        (blocks, list(batch.split_keys.items()), state)
    )


def _drain(stream: PlanStream):
    """Pull every emission, then the finished batch."""
    emissions = []
    while True:
        emission = stream.next_emission()
        if emission is None:
            break
        emissions.append(emission)
    return emissions, stream.result()


def _check_scenario(scenario: int, ingest_kernel: str) -> None:
    rng = random.Random(17000 + scenario)
    weighted = scenario % 4 == 3
    num_keys = 3 + (scenario * 29) % 120
    num_blocks = 2 + scenario % 7
    eager = PromptPartitioner(ingest_kernel=ingest_kernel)
    streamed = PromptPartitioner(ingest_kernel=ingest_kernel)
    key_base = 0
    for index in range(BATCHES_PER_SCENARIO):
        n = 50 + (scenario * 137 + index * 311) % 700
        tuples, info = _gen_batch(rng, index, n, num_keys, key_base, weighted)
        key_base += rng.choice((0, 0, num_keys // 3, num_keys))  # churn

        eager_batch = eager.partition(tuples, num_blocks, info)
        emissions, streamed_batch = _drain(
            streamed.partition_stream(tuples, num_blocks, info)
        )

        # emission order and content: exactly the eager plan's blocks,
        # in block-index order, with the same per-block split keys
        assert len(emissions) == len(eager_batch.blocks), (
            f"scenario={scenario} batch={index}"
        )
        for eager_block, (block, split_keys) in zip(
            eager_batch.blocks, emissions
        ):
            expected_split = {
                k for k in eager_batch.split_keys if k in eager_block
            }
            assert _block_snapshot(block, split_keys) == _block_snapshot(
                eager_block, expected_split
            ), f"scenario={scenario} batch={index} block={block.index}"

        # the drained batch, split tables and accumulator trajectory
        # are byte-identical — cross-batch adaptation stays in lockstep
        assert _batch_snapshot(streamed, streamed_batch) == _batch_snapshot(
            eager, eager_batch
        ), f"scenario={scenario} batch={index}"

        # result() hands back the same block objects it emitted
        for (block, _), result_block in zip(emissions, streamed_batch.blocks):
            assert block is result_block


@pytest.mark.parametrize("chunk", range(4))
def test_stream_matches_eager_plan_python_kernel(chunk):
    per_chunk = NUM_SCENARIOS // 4
    for scenario in range(chunk * per_chunk, (chunk + 1) * per_chunk):
        _check_scenario(scenario, "python")


@pytest.mark.parametrize("chunk", range(4))
def test_stream_matches_eager_plan_numpy_kernel(chunk):
    pytest.importorskip("numpy")
    per_chunk = NUM_SCENARIOS // 4
    for scenario in range(chunk * per_chunk, (chunk + 1) * per_chunk):
        _check_scenario(scenario, "numpy")


def test_result_without_pulling_equals_full_drain():
    """``result()`` on an untouched stream drains internally and returns
    the same batch a pull-everything consumer sees."""
    rng = random.Random(5)
    tuples, info = _gen_batch(rng, 0, 400, 60, 0, weighted=True)
    a = PromptPartitioner()
    b = PromptPartitioner()
    _, pulled = _drain(a.partition_stream(tuples, 2 + 3, info))
    direct = b.partition_stream(tuples, 2 + 3, info).result()
    assert _batch_snapshot(a, pulled) == _batch_snapshot(b, direct)


def test_plan_elapsed_is_stamped_on_the_streamed_batch():
    """Streaming charges plan CPU (generator-resident time) onto the
    batch, so Fig. 14b overhead attribution survives dispatch overlap."""
    rng = random.Random(6)
    tuples, info = _gen_batch(rng, 0, 500, 50, 0, weighted=False)
    partitioner = PromptPartitioner()
    stream = partitioner.partition_stream(tuples, 4, info)
    assert stream.next_emission() is not None
    batch = stream.result()
    assert batch.plan_elapsed == pytest.approx(stream.plan_elapsed)
    assert batch.plan_elapsed > 0.0


def test_default_partition_stream_replays_eagerly():
    """Techniques without an incremental plan still speak the streaming
    API: the base class plans eagerly and replays blocks in order."""
    rng = random.Random(7)
    tuples, info = _gen_batch(rng, 0, 300, 40, 0, weighted=False)
    hashing = make_partitioner("hash")
    reference = make_partitioner("hash")
    eager_batch = reference.partition(tuples, 4, info)
    emissions, streamed_batch = _drain(
        hashing.partition_stream(tuples, 4, info)
    )
    assert [b.index for b, _ in emissions] == [
        b.index for b in eager_batch.blocks
    ]
    assert _batch_snapshot(None, streamed_batch) == _batch_snapshot(
        None, eager_batch
    )
    # the replay wraps the *finished* batch: emitted blocks are the
    # batch's own objects and timing fields are left untouched
    assert all(b is rb for (b, _), rb in zip(emissions, streamed_batch.blocks))


def test_eager_plan_stream_preserves_timing_fields():
    rng = random.Random(8)
    tuples, info = _gen_batch(rng, 0, 200, 30, 0, weighted=False)
    partitioner = PromptPartitioner()
    batch = partitioner.partition(tuples, 3, info)
    batch.plan_elapsed = 1.25
    batch.buffer_elapsed = 0.5
    stream = eager_plan_stream(batch)
    result = stream.result()
    assert result is batch
    assert result.plan_elapsed == 1.25
    assert result.buffer_elapsed == 0.5


def test_next_emission_past_completion_stays_none():
    rng = random.Random(9)
    tuples, info = _gen_batch(rng, 0, 100, 20, 0, weighted=False)
    stream = PromptPartitioner().partition_stream(tuples, 3, info)
    stream.result()
    assert stream.next_emission() is None
    assert stream.next_emission() is None
