"""Space-Saving and Lossy Counting sketches: guarantees and bounds."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sketches import LossyCountingSketch, SpaceSavingSketch


def _zipf_stream(num_keys=100, total=5000, seed=1):
    rng = random.Random(seed)
    weights = [1.0 / (i + 1) for i in range(num_keys)]
    keys = rng.choices(range(num_keys), weights=weights, k=total)
    return keys


# ----------------------------------------------------------------------
# Space-Saving
# ----------------------------------------------------------------------
def test_space_saving_exact_below_capacity():
    sketch = SpaceSavingSketch(capacity=10)
    for key in ["a", "b", "a", "c", "a"]:
        sketch.add(key)
    assert sketch.estimate("a") == 3
    assert sketch.estimate("b") == 1
    assert sketch.guaranteed("a") == 3
    assert sketch.error_bound() == 0
    assert sketch.total == 5


def test_space_saving_capacity_is_bounded():
    sketch = SpaceSavingSketch(capacity=8)
    for key in _zipf_stream():
        sketch.add(key)
    assert len(sketch) <= 8


def test_space_saving_overestimates_never_underestimates():
    stream = _zipf_stream(num_keys=50, total=3000)
    truth = Counter(stream)
    sketch = SpaceSavingSketch(capacity=16)
    for key in stream:
        sketch.add(key)
    for key, estimate in sketch.items():
        assert estimate >= truth[key]
        assert sketch.guaranteed(key) <= truth[key]


def test_space_saving_error_bound_holds():
    stream = _zipf_stream(num_keys=200, total=4000)
    truth = Counter(stream)
    capacity = 32
    sketch = SpaceSavingSketch(capacity=capacity)
    for key in stream:
        sketch.add(key)
    bound = sketch.error_bound()
    assert bound <= sketch.total / capacity + 1
    for key, estimate in sketch.items():
        assert estimate - truth[key] <= bound


def test_space_saving_finds_the_heavy_hitters():
    stream = _zipf_stream(num_keys=100, total=5000)
    truth = Counter(stream)
    sketch = SpaceSavingSketch(capacity=32)
    for key in stream:
        sketch.add(key)
    hitters = dict(sketch.heavy_hitters(0.05))
    for key, count in truth.items():
        if count > 0.08 * len(stream):  # comfortably heavy
            assert key in hitters


def test_space_saving_weighted_add():
    sketch = SpaceSavingSketch(capacity=4)
    sketch.add("a", count=10)
    assert sketch.estimate("a") == 10
    assert sketch.total == 10


def test_space_saving_items_sorted_descending():
    sketch = SpaceSavingSketch(capacity=8)
    for key, n in [("a", 5), ("b", 9), ("c", 2)]:
        sketch.add(key, count=n)
    estimates = [e for _, e in sketch.items()]
    assert estimates == sorted(estimates, reverse=True)


def test_space_saving_clear():
    sketch = SpaceSavingSketch(capacity=4)
    sketch.add("a")
    sketch.clear()
    assert len(sketch) == 0
    assert sketch.total == 0


def test_space_saving_validation():
    with pytest.raises(ValueError):
        SpaceSavingSketch(0)
    sketch = SpaceSavingSketch(4)
    with pytest.raises(ValueError):
        sketch.add("a", count=0)
    with pytest.raises(ValueError):
        sketch.heavy_hitters(0.0)


# ----------------------------------------------------------------------
# Lossy Counting
# ----------------------------------------------------------------------
def test_lossy_counting_exact_for_short_streams():
    sketch = LossyCountingSketch(epsilon=0.01)  # bucket width 100
    for key in ["a"] * 5 + ["b"] * 3:
        sketch.add(key)
    assert sketch.estimate("a") == 5
    assert sketch.estimate("b") == 3


def test_lossy_counting_undercounts_by_at_most_eps_n():
    stream = _zipf_stream(num_keys=100, total=5000, seed=3)
    truth = Counter(stream)
    eps = 0.02
    sketch = LossyCountingSketch(epsilon=eps)
    for key in stream:
        sketch.add(key)
    for key, count in truth.items():
        estimate = sketch.estimate(key)
        assert estimate <= count
        assert count - estimate <= eps * len(stream)


def test_lossy_counting_retains_frequent_keys():
    stream = _zipf_stream(num_keys=100, total=5000, seed=4)
    truth = Counter(stream)
    eps = 0.01
    sketch = LossyCountingSketch(epsilon=eps)
    for key in stream:
        sketch.add(key)
    for key, count in truth.items():
        if count >= eps * len(stream):
            assert sketch.estimate(key) > 0, f"frequent key {key} dropped"


def test_lossy_counting_prunes_rare_keys():
    sketch = LossyCountingSketch(epsilon=0.1)  # bucket width 10
    # 100 distinct singletons: nearly all should be pruned
    for i in range(100):
        sketch.add(f"k{i}")
    assert len(sketch) < 30


def test_lossy_counting_heavy_hitters_no_false_negatives():
    stream = _zipf_stream(num_keys=50, total=3000, seed=5)
    truth = Counter(stream)
    sketch = LossyCountingSketch(epsilon=0.01)
    for key in stream:
        sketch.add(key)
    hitters = {k for k, _ in sketch.heavy_hitters(0.05)}
    for key, count in truth.items():
        if count >= 0.05 * len(stream):
            assert key in hitters


def test_lossy_counting_validation():
    with pytest.raises(ValueError):
        LossyCountingSketch(0.0)
    with pytest.raises(ValueError):
        LossyCountingSketch(1.0)
    sketch = LossyCountingSketch(0.1)
    with pytest.raises(ValueError):
        sketch.add("a", count=-1)
    with pytest.raises(ValueError):
        sketch.heavy_hitters(1.5)


def test_lossy_counting_rejects_threshold_below_epsilon():
    """Regression: a threshold below epsilon made the support cut
    ``(threshold - epsilon) * N`` non-positive, silently returning every
    tracked key as a "heavy hitter".  The guarantee only holds from
    epsilon up, so the call must refuse instead of mislead."""
    sketch = LossyCountingSketch(epsilon=0.1)
    for i in range(100):
        sketch.add(f"k{i % 10}")
    with pytest.raises(ValueError, match="epsilon"):
        sketch.heavy_hitters(0.05)
    # the boundary itself is legal
    assert isinstance(sketch.heavy_hitters(0.1), list)


def test_lossy_counting_clear():
    sketch = LossyCountingSketch(0.1)
    sketch.add("a", count=5)
    sketch.clear()
    assert len(sketch) == 0
    assert sketch.total == 0


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
@given(
    keys=st.lists(st.integers(0, 30), min_size=1, max_size=400),
    capacity=st.integers(1, 16),
)
@settings(max_examples=60, deadline=None)
def test_property_space_saving_invariants(keys, capacity):
    truth = Counter(keys)
    sketch = SpaceSavingSketch(capacity)
    for key in keys:
        sketch.add(key)
    assert len(sketch) <= capacity
    assert sketch.total == len(keys)
    for key, estimate in sketch.items():
        assert estimate >= truth[key]


@given(
    keys=st.lists(st.integers(0, 20), min_size=1, max_size=300),
    epsilon=st.sampled_from([0.5, 0.1, 0.05]),
)
@settings(max_examples=60, deadline=None)
def test_property_lossy_counting_invariants(keys, epsilon):
    truth = Counter(keys)
    sketch = LossyCountingSketch(epsilon)
    for key in keys:
        sketch.add(key)
    assert sketch.total == len(keys)
    for key, estimate in sketch.items():
        assert estimate <= truth[key]
        assert truth[key] - estimate <= epsilon * len(keys)
