"""Early Batch Release (Section 4.2, Figure 7).

The partitioning algorithm must not eat into the processing phase, so
Prompt separates the *batching cut-off* from the *processing cut-off*
(the system heartbeat): buffering stops ``slack_fraction`` of the
interval early, giving the partitioner that slack to produce the data
blocks exactly at the heartbeat.  Tuples arriving during the slack are
carried into the next batch.  The paper observes a slack of at most 5%
of the batch interval suffices (Figure 14b measures the partitioner's
actual cost against that budget).
"""

from __future__ import annotations

from dataclasses import dataclass

from .batch import BatchInfo
from .config import EarlyReleaseConfig

__all__ = ["ReleaseWindow", "EarlyReleaseController"]


@dataclass(frozen=True, slots=True)
class ReleaseWindow:
    """Timing plan for one batch under early release."""

    info: BatchInfo
    cutoff: float      # batching stops here
    heartbeat: float   # processing starts here (== info.t_end)

    @property
    def slack(self) -> float:
        return self.heartbeat - self.cutoff


class EarlyReleaseController:
    """Computes release windows and audits partitioner latency against them."""

    def __init__(self, config: EarlyReleaseConfig | None = None) -> None:
        self.config = config or EarlyReleaseConfig()
        self._observed: list[tuple[float, float]] = []  # (elapsed, slack)

    def window_for(self, info: BatchInfo) -> ReleaseWindow:
        """The batching cut-off for ``info``'s interval."""
        slack = info.interval * self.config.slack_fraction
        return ReleaseWindow(info=info, cutoff=info.t_end - slack, heartbeat=info.t_end)

    def belongs_to_next_batch(self, ts: float, window: ReleaseWindow) -> bool:
        """Whether a tuple at ``ts`` arrived after the batching cut-off."""
        return ts >= window.cutoff

    def record(self, partition_elapsed: float, window: ReleaseWindow) -> bool:
        """Log a partitioning run; returns True if it met the heartbeat."""
        self._observed.append((partition_elapsed, window.slack))
        return partition_elapsed <= window.slack

    @property
    def observations(self) -> list[tuple[float, float]]:
        return list(self._observed)

    def miss_rate(self) -> float:
        """Fraction of partitioning runs that overran their slack."""
        if not self._observed:
            return 0.0
        misses = sum(1 for elapsed, slack in self._observed if elapsed > slack)
        return misses / len(self._observed)

    def overhead_fractions(self, batch_interval: float) -> list[float]:
        """Partitioning cost as a fraction of the batch interval (Fig 14b)."""
        if batch_interval <= 0:
            raise ValueError("batch_interval must be positive")
        return [elapsed / batch_interval for elapsed, _ in self._observed]
