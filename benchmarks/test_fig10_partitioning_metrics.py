"""Figure 10: BSI (relative to hashing) and BCI (relative to shuffle).

Paper shapes: shuffle/time/Prompt near 0 on relative BSI; hashing and
Prompt lowest on BCI while PK2/PK5/cAM sit several times above shuffle;
Prompt balances both at once.
"""

from __future__ import annotations

import pytest

from repro.bench import fig10_partition_metrics, format_table


# tweets/tpch are the figure's datasets; gcm/debs regenerate the results
# the paper reports as "similar ... but omitted due to space limitation".
@pytest.mark.parametrize("dataset", ["tweets", "tpch", "gcm", "debs"])
def test_fig10_partition_metrics(benchmark, record_experiment, dataset):
    rows = benchmark.pedantic(
        lambda: fig10_partition_metrics(
            dataset, num_blocks=16, rate=20_000.0, interval=1.0
        ),
        rounds=1,
        iterations=1,
    )
    record_experiment(
        f"fig10_{dataset}",
        format_table(
            rows,
            columns=["Technique", "BSI", "BSI_rel_hash", "BCI", "BCI_rel_shuffle", "KSR", "MPI"],
            title=f"Figure 10 ({dataset}): partitioning metrics, 16 blocks",
        ),
        rows,
        store=dict(workload=dataset),
    )
    by_name = {r["Technique"]: r for r in rows}
    # Size balance: prompt ~ shuffle ~ time, far below hashing.
    for name in ("prompt", "shuffle"):
        assert by_name[name]["BSI_rel_hash"] <= 0.25
    # Key locality: prompt near hashing's ideal 1.0, far below shuffle.
    assert by_name["prompt"]["KSR"] <= 1.25
    assert by_name["shuffle"]["KSR"] > by_name["prompt"]["KSR"]
    # Overall: prompt has the best (or tied-best) MPI.
    best = min(r["MPI"] for r in rows)
    assert by_name["prompt"]["MPI"] <= best * 1.05 + 1e-9
