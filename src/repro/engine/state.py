"""Batch state store: immutable per-batch outputs plus input replication.

Section 8 (Consistency in Prompt): state isolation falls out of the
micro-batch model — each batch's output is decoupled from the tasks
that produced it and preserved immutably until the batch exits the
query window.  Exactly-once semantics come from replicating the input
batch: "In case of losing a batch's state due to hardware failure,
this state is recomputed using the replicated batched data."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping, Optional, Sequence

from ..core.tuples import Key, StreamTuple

__all__ = ["BatchState", "StateStore"]


@dataclass(frozen=True)
class BatchState:
    """One batch's preserved computation state."""

    index: int
    output: Mapping[Key, Any]
    replicated_input: Optional[tuple[StreamTuple, ...]] = None

    @property
    def recoverable(self) -> bool:
        return self.replicated_input is not None


class StateStore:
    """In-memory store of batch states within the active window span.

    ``replicate_inputs=True`` keeps each batch's raw tuples alongside
    its output so a lost state can be recomputed (the fault-tolerance
    path exercised by :mod:`repro.engine.faults`).
    """

    def __init__(self, *, replicate_inputs: bool = False) -> None:
        self.replicate_inputs = replicate_inputs
        self._states: dict[int, BatchState] = {}
        self._evicted_through = -1

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, index: int) -> bool:
        return index in self._states

    def put(
        self,
        index: int,
        output: Mapping[Key, Any],
        input_tuples: Sequence[StreamTuple] | None = None,
    ) -> BatchState:
        """Preserve a batch's output (immutably) and optionally its input."""
        if index in self._states:
            raise ValueError(f"batch {index} already has preserved state")
        if index <= self._evicted_through:
            raise ValueError(f"batch {index} was already evicted; window moved on")
        replicated = None
        if self.replicate_inputs:
            if input_tuples is None:
                raise ValueError(
                    "replicate_inputs is on but no input tuples were provided"
                )
            replicated = tuple(input_tuples)
        state = BatchState(
            index=index,
            output=MappingProxyType(dict(output)),
            replicated_input=replicated,
        )
        self._states[index] = state
        return state

    def get(self, index: int) -> BatchState:
        try:
            return self._states[index]
        except KeyError:
            raise KeyError(f"no preserved state for batch {index}") from None

    def drop_output(self, index: int) -> None:
        """Simulate losing a batch's state (the failure being injected).

        The replicated input, held on other nodes, survives.
        """
        state = self.get(index)
        self._states[index] = BatchState(
            index=index, output=MappingProxyType({}), replicated_input=state.replicated_input
        )

    def restore(self, index: int, output: Mapping[Key, Any]) -> BatchState:
        """Install a recomputed output for a previously lost state."""
        state = self.get(index)
        restored = BatchState(
            index=index,
            output=MappingProxyType(dict(output)),
            replicated_input=state.replicated_input,
        )
        self._states[index] = restored
        return restored

    def evict_through(self, index: int) -> int:
        """Release every batch <= ``index`` (it left the query window).

        "Once the batch output is produced and the batch expires from
        the query window, this batch can be removed."  Returns how many
        states were released.
        """
        victims = [i for i in self._states if i <= index]
        for i in victims:
            del self._states[i]
        self._evicted_through = max(self._evicted_through, index)
        return len(victims)
