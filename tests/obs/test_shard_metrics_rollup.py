"""Cross-shard metrics rollup: ``merge_from`` and the ``shard`` label.

The sharded driver folds each shard engine's registry into one rollup
registry under ``extra_labels={"shard": "i"}``.  This suite pins the
fold semantics per instrument kind and — the satellite check from the
issue — proves in the Prometheus text format that shard-labeled series
coexist with unlabeled same-name series without collision, surviving a
``prometheus_text`` → ``parse_prometheus`` round trip.
"""

from __future__ import annotations

import pytest

from repro.obs.export import parse_prometheus, prometheus_text
from repro.obs.metrics import NULL_METRICS, MetricsRegistry


def _shard_registry(shard: int) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("prompt_tuples_total", "tuples ingested").inc(100 * (shard + 1))
    reg.gauge("prompt_backlog", "queued tuples").set(float(shard))
    reg.histogram(
        "prompt_batch_seconds", "batch latency", buckets=(0.1, 1.0)
    ).observe(0.5)
    return reg


def test_counters_accumulate_and_gauges_take_last_value():
    rollup = MetricsRegistry()
    src = MetricsRegistry()
    src.counter("c").inc(3)
    src.gauge("g").set(7.0)
    rollup.merge_from(src)
    rollup.merge_from(src)
    metrics = {m.name: m for m in rollup.collect()}
    assert metrics["c"].value == 6  # counter folds additively
    assert metrics["g"].value == 7.0  # gauge takes the source value


def test_histograms_add_buckets_sum_and_count():
    rollup = MetricsRegistry()
    for v in (0.05, 0.5):
        src = MetricsRegistry()
        src.histogram("h", buckets=(0.1, 1.0)).observe(v)
        rollup.merge_from(src)
    (hist,) = rollup.collect()
    assert hist.count == 2
    assert hist.sum == pytest.approx(0.55)
    assert hist.bucket_counts == [1, 1]


def test_histogram_bucket_mismatch_is_an_error():
    rollup = MetricsRegistry()
    rollup.histogram("h", buckets=(0.1, 1.0)).observe(0.5)
    src = MetricsRegistry()
    src.histogram("h", buckets=(0.25, 2.0)).observe(0.5)
    with pytest.raises(ValueError, match="bucket mismatch"):
        rollup.merge_from(src)


def test_null_registry_merge_is_a_no_op():
    src = MetricsRegistry()
    src.counter("c").inc()
    NULL_METRICS.merge_from(src, extra_labels={"shard": "0"})
    assert list(NULL_METRICS.collect()) == []


def test_shard_label_does_not_collide_with_unlabeled_series():
    """Same metric names, with and without ``shard=`` — distinct series.

    Metric identity is ``(name, sorted labels)``, so the driver-level
    unlabeled series and the per-shard rollups are separate samples in
    the exposition text, each keeping its own value.
    """
    rollup = MetricsRegistry()
    # driver-level, unlabeled: same names the shard engines use
    rollup.counter("prompt_tuples_total", "tuples ingested").inc(1)
    rollup.gauge("prompt_backlog", "queued tuples").set(99.0)
    for shard in range(2):
        rollup.merge_from(_shard_registry(shard), {"shard": str(shard)})

    text = prometheus_text(rollup)
    samples = parse_prometheus(text)

    assert samples["prompt_tuples_total"] == 1
    assert samples['prompt_tuples_total{shard="0"}'] == 100
    assert samples['prompt_tuples_total{shard="1"}'] == 200
    assert samples["prompt_backlog"] == 99.0
    assert samples['prompt_backlog{shard="0"}'] == 0.0
    assert samples['prompt_backlog{shard="1"}'] == 1.0
    # histogram series carry the shard label on every sample line
    assert samples['prompt_batch_seconds_count{shard="0"}'] == 1
    assert samples['prompt_batch_seconds_count{shard="1"}'] == 1
    # one TYPE header per metric name even with many label sets
    assert text.count("# TYPE prompt_tuples_total counter") == 1


def test_merge_preserves_source_labels_under_the_shard_label():
    rollup = MetricsRegistry()
    src = MetricsRegistry()
    src.counter("c", labels={"stage": "map"}).inc(5)
    rollup.merge_from(src, {"shard": "3"})
    (metric,) = rollup.collect()
    assert dict(metric.labels) == {"shard": "3", "stage": "map"}


def test_sharded_run_exports_shard_labeled_series(tmp_path):
    """End to end: a sharded run's registry round-trips through the text format."""
    pytest.importorskip("numpy")
    import repro
    from repro.queries import wordcount_query
    from repro.workloads import MultiTenantSource, TenantStream, synd_source

    union = MultiTenantSource(
        [
            TenantStream(
                f"t{i}", synd_source(1.2, num_keys=30, rate=300.0, seed=60 + i)
            )
            for i in range(3)
        ]
    )
    result = repro.run(
        union,
        wordcount_query(window_length=1.0),
        num_batches=2,
        topology=repro.Sharded(shards=2),
        engine=repro.EngineConfig(
            batch_interval=0.5,
            num_blocks=2,
            observability=repro.ObservabilityConfig(),
        ),
    )
    assert result.observability is not None
    samples = parse_prometheus(
        prometheus_text(result.observability.metrics)
    )
    assert samples["prompt_shard_count"] == 2
    shard_labeled = [k for k in samples if 'shard="' in k]
    assert any('shard="0"' in k for k in shard_labeled)
    assert any('shard="1"' in k for k in shard_labeled)
