"""Property-based oracle: Algorithm 2 vs the exact B-BPFI solver.

Random tiny key-frequency vectors are partitioned by the Algorithm 2
heuristic (``PromptBatchPartitioner``) and scored against the
branch-and-bound oracle :func:`~repro.partitioners.bpfi.exact_min_fragments`
plus the instance lower bound.  The asserted approximation bounds were
calibrated over several thousand random instances and carry slack:

- **capacity** (Definition 1, requirement 1): every block stays within
  ``p_size + max(1, p_size // 16)`` — the ceil slack plus the rebalance
  pass's documented ``p_size // 64`` tolerance, with margin;
- **fragmentation** (requirement 3): total fragments never exceed
  ``2 * OPT + num_blocks``.  The factor 2 comes from hot-key dicing
  into half-block chunks (a key of size ``s`` spans at most
  ``ceil(s / (p_size/2)) <= 2 * ceil(s / p_size) + 1`` blocks), the
  additive term from rebalance shaves;
- **sanity floor**: at least one fragment per distinct key, so
  ``KSR >= 1`` always.

Instances are kept tiny (K <= 8, B <= 4, sizes <= 60) so the exact
solver stays inside its node budget.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import BatchInfo
from repro.core.batch_partitioner import PromptBatchPartitioner
from repro.core.metrics import evaluate_partition
from repro.core.tuples import KeyGroup, StreamTuple
from repro.partitioners.bpfi import exact_min_fragments, fragment_lower_bound

INFO = BatchInfo(0, 0.0, 1.0)

frequency_vectors = st.lists(
    st.integers(min_value=1, max_value=60), min_size=1, max_size=8
)
bin_counts = st.integers(min_value=2, max_value=4)


def _instance(freqs: list[int]):
    """(items, key_groups) for one frequency vector, largest first."""
    named = {f"k{i}": n for i, n in enumerate(freqs)}
    items = sorted(named.items(), key=lambda kv: (-kv[1], kv[0]))
    groups = [
        KeyGroup(
            key=k,
            tuples=[StreamTuple(ts=j * 1e-3, key=k, value=None) for j in range(n)],
            tracked_count=n,
        )
        for k, n in items
    ]
    return items, groups


def _solve(freqs: list[int], num_blocks: int):
    items, groups = _instance(freqs)
    total = sum(freqs)
    p_size = math.ceil(total / num_blocks)
    batch = PromptBatchPartitioner().partition(groups, num_blocks, INFO)
    exact = exact_min_fragments(items, num_blocks, p_size, node_limit=500_000)
    return batch, items, p_size, exact


@settings(max_examples=120, deadline=None)
@given(freqs=frequency_vectors, num_blocks=bin_counts)
def test_no_tuple_is_lost_or_duplicated(freqs, num_blocks):
    _, groups = _instance(freqs)
    batch = PromptBatchPartitioner().partition(groups, num_blocks, INFO)
    placed: dict[str, int] = {}
    for block in batch.blocks:
        for key, size in block.fragment_sizes().items():
            placed[key] = placed.get(key, 0) + size
    assert placed == {f"k{i}": n for i, n in enumerate(freqs)}
    # the reference table records exactly the keys spanning > 1 block
    spans = {
        k: sum(1 for b in batch.blocks if k in b) for k in placed
    }
    assert set(batch.split_keys) == {k for k, c in spans.items() if c > 1}


@settings(max_examples=120, deadline=None)
@given(freqs=frequency_vectors, num_blocks=bin_counts)
def test_blocks_respect_capacity_bound(freqs, num_blocks):
    batch, _, p_size, _ = _solve(freqs, num_blocks)
    quality = evaluate_partition(batch)
    tolerance = max(1, p_size // 16)
    assert quality.max_block_size <= p_size + tolerance
    # BSI can never exceed the capacity itself (max <= p_size + tol,
    # avg >= 0); normalized it stays strictly below 1 + tol/p_size.
    assert quality.bsi <= p_size + tolerance


@settings(max_examples=120, deadline=None)
@given(freqs=frequency_vectors, num_blocks=bin_counts)
def test_fragmentation_within_factor_two_of_optimal(freqs, num_blocks):
    batch, items, p_size, exact = _solve(freqs, num_blocks)
    fragments = batch.key_fragment_count()
    lower = fragment_lower_bound(items, num_blocks, p_size)
    assert exact >= lower  # oracle self-consistency
    assert fragments >= len(items)  # every key appears somewhere
    assert fragments <= 2 * exact + num_blocks


@settings(max_examples=120, deadline=None)
@given(freqs=frequency_vectors, num_blocks=bin_counts)
def test_ksr_bounded_by_fragment_ratio(freqs, num_blocks):
    batch, items, _, exact = _solve(freqs, num_blocks)
    quality = evaluate_partition(batch)
    assert quality.ksr >= 1.0
    assert quality.ksr <= (2 * exact + num_blocks) / len(items)


def test_oracle_agrees_with_lower_bound_on_known_instance():
    """Figure 5's running example: oracle between bound and heuristics."""
    items = [("K1", 150), ("K2", 80), ("K3", 50), ("K4", 40),
             ("K5", 25), ("K6", 20), ("K7", 12), ("K8", 8)]
    exact = exact_min_fragments(items, 4, 97)
    assert fragment_lower_bound(items, 4, 97) <= exact
    freqs = [size for _, size in items]
    batch, _, _, exact_again = _solve(freqs, 4)
    assert exact_again == exact
    assert batch.key_fragment_count() <= 2 * exact + 4
