"""Experiment harness: stability probing and max-throughput search.

Figure 11 reports, per technique, "the maximum throughput achieved ...
before activating back-pressure".  The harness reproduces that
operational definition: run the engine at a candidate ingestion rate,
ask the back-pressure monitor whether the run stayed stable, and
binary-search the highest stable rate.

Sources are built through a factory taking the mean rate, so any
arrival *shape* (constant, sinusoidal, ...) can be scaled up and down
while preserving its variability.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from ..engine.engine import EngineConfig, MicroBatchEngine, RunResult
from ..engine.faults import TaskFaultInjector
from ..partitioners.base import Partitioner
from ..partitioners.registry import make_partitioner
from ..queries.base import Query
from ..workloads.source import StreamSource

__all__ = ["ThroughputSearch", "ThroughputResult", "run_at_rate"]

SourceFactory = Callable[[float], StreamSource]


def run_at_rate(
    partitioner: Partitioner,
    query: Query,
    config: EngineConfig,
    source_factory: SourceFactory,
    rate: float,
    num_batches: int,
    *,
    backend: str | None = None,
    task_fault_injector: Optional["TaskFaultInjector"] = None,
) -> RunResult:
    """One engine run with a freshly-built source at ``rate``.

    ``backend`` overrides ``config.executor`` for this run — backends
    are bit-identical by contract, so probing under "parallel" answers
    the same stability question while exercising the pool.
    ``task_fault_injector`` threads a deterministic fault plan into the
    run (the experiment matrix's fault-profile axis).
    """
    if backend is not None and backend != config.executor:
        config = replace(config, executor=backend)
    engine = MicroBatchEngine(
        partitioner, query, config, task_fault_injector=task_fault_injector
    )
    return engine.run(source_factory(rate), num_batches)


@dataclass(frozen=True, slots=True)
class ThroughputResult:
    """Outcome of a max-throughput search for one technique."""

    technique: str
    max_rate: float
    probes: int
    lo: float
    hi: float

    @property
    def tuples_per_second(self) -> float:
        return self.max_rate


@dataclass
class ThroughputSearch:
    """Binary search for the highest back-pressure-free ingestion rate."""

    query: Query
    config: EngineConfig
    source_factory: SourceFactory
    num_batches: int = 5
    #: relative precision of the search (stop when hi/lo - 1 < tolerance)
    tolerance: float = 0.08
    #: hard probe cap (each probe is one full engine run)
    max_probes: int = 12
    initial_rate: float = 5_000.0
    #: execution backend override for every probe (None = config's own)
    backend: Optional[str] = None

    def stable_at(self, partitioner: Partitioner, rate: float) -> bool:
        result = run_at_rate(
            partitioner,
            self.query,
            self.config,
            self.source_factory,
            rate,
            self.num_batches,
            backend=self.backend,
        )
        return result.stable

    def find_max_rate(self, technique: str | Partitioner) -> ThroughputResult:
        """Highest stable mean rate for ``technique``.

        Phase 1 brackets the stability boundary by doubling/halving from
        ``initial_rate``; phase 2 bisects to ``tolerance``.
        """
        name = technique if isinstance(technique, str) else technique.name
        probes = 0

        def probe(rate: float) -> bool:
            nonlocal probes
            probes += 1
            # Fresh partitioner per probe: no state leaks across rates.
            part = (
                make_partitioner(technique)
                if isinstance(technique, str)
                else technique
            )
            return self.stable_at(part, rate)

        rate = self.initial_rate
        if probe(rate):
            lo, hi = rate, rate * 2
            while probes < self.max_probes and probe(hi):
                lo, hi = hi, hi * 2
        else:
            hi = rate
            lo = rate / 2
            while probes < self.max_probes and not probe(lo):
                hi, lo = lo, lo / 2
                if lo < 1:
                    return ThroughputResult(name, 0.0, probes, 0.0, hi)
        while probes < self.max_probes and (hi - lo) / lo > self.tolerance:
            mid = (lo + hi) / 2
            if probe(mid):
                lo = mid
            else:
                hi = mid
        return ThroughputResult(name, lo, probes, lo, hi)

    def compare(self, techniques: list[str]) -> list[ThroughputResult]:
        """Max throughput of each technique, in the given order."""
        return [self.find_max_rate(t) for t in techniques]
