"""Workload for the resource-elasticity experiment (Figure 12).

"We continuously increase the number of input data tuples and data
distribution (i.e., number of unique keys) over time" — then decrease
them.  This source ramps *both* dials independently: the arrival rate
follows any :class:`ArrivalProcess`, and the active key universe grows
or shrinks linearly between two sizes over a configurable span.  Keys
are drawn near-uniformly from the currently active universe so the
key-count statistic the accumulator reports tracks the ramp closely.
"""

from __future__ import annotations

import numpy as np

from ..core.tuples import StreamTuple
from .arrival import ArrivalProcess
from .source import StreamSource

__all__ = ["ElasticWorkloadSource"]


class ElasticWorkloadSource(StreamSource):
    """Rate ramp x key-universe ramp, for driving the auto-scaler."""

    name = "elastic"

    def __init__(
        self,
        arrival: ArrivalProcess,
        *,
        keys_start: int = 200,
        keys_end: int = 2_000,
        t0: float = 0.0,
        t1: float = 60.0,
        seed: int = 0,
    ) -> None:
        if keys_start < 1 or keys_end < 1:
            raise ValueError("key universe sizes must be >= 1")
        if t1 <= t0:
            raise ValueError("key ramp needs t1 > t0")
        self.arrival = arrival
        self.keys_start = keys_start
        self.keys_end = keys_end
        self.t0 = t0
        self.t1 = t1
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def active_keys(self, t: float) -> int:
        """Size of the key universe at time ``t`` (linear ramp)."""
        if t <= self.t0:
            return self.keys_start
        if t >= self.t1:
            return self.keys_end
        frac = (t - self.t0) / (self.t1 - self.t0)
        return max(1, round(self.keys_start + frac * (self.keys_end - self.keys_start)))

    def reset(self) -> None:
        self.arrival.reset()
        self._rng = np.random.default_rng(self.seed)

    def tuples_between(self, t0: float, t1: float) -> list[StreamTuple]:
        count = self.arrival.count_between(t0, t1)
        if count == 0:
            return []
        timestamps = self.arrival.timestamps(t0, t1, count)
        universe = self.active_keys((t0 + t1) / 2)
        ranks = self._rng.integers(0, universe, size=count)
        return [
            StreamTuple(ts=float(ts), key=int(rank), value=None)
            for ts, rank in zip(timestamps, ranks)
        ]
