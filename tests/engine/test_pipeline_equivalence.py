"""Differential harness: the pipelined driver is bit-identical to sequential.

``pipeline_depth >= 2`` changes *when* the driver does its work — batch
k+1's ingest/partition overlaps batch k's execution — but must never
change *what* the engine computes.  Every case here runs the same seeded
workload at depth 1 (the strictly sequential reference) and at depth 2+
and requires

- byte-identical windowed answers (pickled per window, like the
  executor-equivalence harness),
- equal ``RunStats`` records field for field — the pipeline's
  wall-clock observations (``pipeline_wait_seconds``,
  ``pipeline_overlap_seconds``) are ``compare=False`` by design, the
  simulated timeline (ready/start/finish/queue delay) is not,
- identical backpressure verdicts, state stores and recoveries.

Coverage crosses executors (the eager serial handle and the true
dispatcher-thread parallel handle), both partitioning paths
(accumulator ``prompt`` and heartbeat-cut ``hash``), several run seeds,
and the fault-tolerance machinery *on in-flight handles*: task crashes
with retries, and a worker poison that breaks the process pool while
two batches are in flight.
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine.engine import EngineConfig, MicroBatchEngine
from repro.engine.faults import TaskFaultInjector
from repro.obs import ObservabilityConfig
from repro.partitioners import make_partitioner
from repro.queries import wordcount_query
from repro.workloads import ConstantRate, synd_source, tweets_source

NUM_BATCHES = 5

WORKLOADS = {
    "synd-skewed": lambda: synd_source(
        1.4, num_keys=300, arrival=ConstantRate(1_000.0), seed=11
    ),
    "tweets": lambda: tweets_source(rate=800.0, seed=42),
}

PARTITIONERS = ("prompt", "hash")
FEEDBACK_PARTITIONERS = ("d-choices", "w-choices", "fang")
EXECUTORS = ("serial", "parallel")


def _run(
    workload: str,
    partitioner: str,
    executor: str,
    depth: int,
    *,
    seed: int = 13,
    injector: TaskFaultInjector | None = None,
    observability: ObservabilityConfig | None = None,
):
    cfg = EngineConfig(
        batch_interval=1.0,
        num_blocks=4,
        num_reducers=4,
        executor=executor,
        executor_workers=2,
        run_seed=seed,
        pipeline_depth=depth,
        observability=observability,
    )
    engine = MicroBatchEngine(
        make_partitioner(partitioner),
        wordcount_query(window_length=3.0),
        cfg,
        task_fault_injector=injector,
    )
    return engine.run(WORKLOADS[workload](), NUM_BATCHES)


def _assert_equivalent(reference, pipelined):
    """Depth never leaks into results: windows, stats, control loops."""
    assert len(reference.window_answers) == len(pipelined.window_answers)
    for r_window, p_window in zip(
        reference.window_answers, pipelined.window_answers
    ):
        assert pickle.dumps(r_window) == pickle.dumps(p_window)
    assert reference.stats.records == pipelined.stats.records
    assert reference.stats.batch_interval == pipelined.stats.batch_interval
    assert reference.scaling_history == pipelined.scaling_history
    assert reference.backpressure.triggered == pipelined.backpressure.triggered
    assert reference.stable == pipelined.stable
    assert len(reference.recoveries) == len(pipelined.recoveries)
    assert len(reference.state_store) == len(pipelined.state_store)
    for record in reference.stats.records:
        if record.index in reference.state_store:
            assert dict(reference.state_store.get(record.index).output) == dict(
                pipelined.state_store.get(record.index).output
            )


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("partitioner", PARTITIONERS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_depth2_matches_sequential(workload, partitioner, executor):
    """The tentpole contract: depth 2 == depth 1, on both executors and
    both partitioning paths."""
    reference = _run(workload, partitioner, executor, 1)
    pipelined = _run(workload, partitioner, executor, 2)
    _assert_equivalent(reference, pipelined)
    if executor == "parallel":
        assert pipelined.backend_name == "parallel"
        assert pipelined.executor_fallbacks == 0
        assert pipelined.stats.backends_used() == ("parallel",)


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("partitioner", FEEDBACK_PARTITIONERS)
def test_feedback_consumers_depth2_matches_sequential(partitioner, executor):
    """The lag-2 feedback discipline makes the adaptive techniques
    driver-invariant: what they observe (and hence decide) is the same
    whether batch k-2 completed synchronously or was drained while
    batch k-1 was in flight."""
    reference = _run("synd-skewed", partitioner, executor, 1)
    pipelined = _run("synd-skewed", partitioner, executor, 2)
    _assert_equivalent(reference, pipelined)


@pytest.mark.parametrize("partitioner", FEEDBACK_PARTITIONERS)
def test_feedback_consumers_survive_task_crashes(partitioner):
    """Retries happen on the dispatcher thread while feedback for the
    crashed batch is still pending — the published load must be that of
    the *successful* attempt, identically to the sequential run."""
    injector = (
        TaskFaultInjector()
        .crash(0, "map", 0, times=1)
        .crash(1, "reduce", 1, times=2)
    )
    reference = _run("synd-skewed", partitioner, "serial", 1)
    pipelined = _run(
        "synd-skewed", partitioner, "parallel", 2, injector=injector
    )
    _assert_equivalent(reference, pipelined)
    assert pipelined.stats.total_task_retries() >= 3
    assert pipelined.executor_fallbacks == 0


@pytest.mark.parametrize("partitioner", FEEDBACK_PARTITIONERS)
def test_feedback_consumers_clamp_deeper_pipelines(partitioner):
    """Depth 4 cannot honor lag-2 delivery, so the engine clamps it for
    feedback consumers — the run must equal the sequential reference."""
    reference = _run("synd-skewed", partitioner, "parallel", 1)
    deep = _run("synd-skewed", partitioner, "parallel", 4)
    _assert_equivalent(reference, deep)


@pytest.mark.parametrize("seed", (0, 1, 7, 99))
def test_depth2_matches_sequential_across_seeds(seed):
    """The contract holds for any run seed, not one lucky constant."""
    reference = _run("synd-skewed", "prompt", "parallel", 1, seed=seed)
    pipelined = _run("synd-skewed", "prompt", "parallel", 2, seed=seed)
    _assert_equivalent(reference, pipelined)


def test_deeper_pipelines_match_too():
    """Depth 3 parks two batches behind the one executing; same answer."""
    reference = _run("tweets", "prompt", "parallel", 1)
    for depth in (3, 4):
        _assert_equivalent(reference, _run("tweets", "prompt", "parallel", depth))


def test_depth1_is_the_legacy_path_exactly():
    """``pipeline_depth=1`` must be indistinguishable from a config that
    never mentions the knob (the pre-pipeline default path)."""
    explicit = _run("synd-skewed", "prompt", "serial", 1)
    cfg = EngineConfig(
        batch_interval=1.0, num_blocks=4, num_reducers=4,
        executor="serial", executor_workers=2, run_seed=13,
    )
    engine = MicroBatchEngine(
        make_partitioner("prompt"), wordcount_query(window_length=3.0), cfg
    )
    implicit = engine.run(WORKLOADS["synd-skewed"](), NUM_BATCHES)
    _assert_equivalent(implicit, explicit)
    assert all(
        r.pipeline_wait_seconds == 0.0 and r.pipeline_overlap_seconds == 0.0
        for r in explicit.stats.records
    )


@pytest.mark.parametrize("partitioner", PARTITIONERS)
def test_task_crashes_on_in_flight_handles(partitioner):
    """Retries fire inside the dispatcher thread while the driver is off
    partitioning the next batch — and stay invisible in the results."""
    injector = (
        TaskFaultInjector()
        .crash(0, "map", 0, times=1)
        .crash(1, "reduce", 1, times=2)
    )
    reference = _run("synd-skewed", partitioner, "serial", 1)
    pipelined = _run(
        "synd-skewed", partitioner, "parallel", 2, injector=injector
    )
    _assert_equivalent(reference, pipelined)
    stats = pipelined.stats
    assert stats.total_task_retries() >= 3
    assert pipelined.executor_fallbacks == 0
    assert stats.backends_used() == ("parallel",)


@pytest.mark.parametrize("partitioner", PARTITIONERS)
def test_pool_kill_with_two_batches_in_flight(partitioner):
    """The acceptance-criteria case: a worker poison breaks the process
    pool while the pipeline holds two dispatched batches.  Resurrection
    happens on the dispatcher thread (it must not try to join itself);
    the run completes byte-identical with zero serial fallbacks."""
    injector = TaskFaultInjector().poison(2, "map", 1, times=1)
    reference = _run("synd-skewed", partitioner, "serial", 1)
    pipelined = _run(
        "synd-skewed", partitioner, "parallel", 3, injector=injector
    )
    _assert_equivalent(reference, pipelined)
    stats = pipelined.stats
    assert stats.total_pool_resurrections() == 1
    by_index = {r.index: r for r in stats.records}
    assert by_index[2].pool_resurrections == 1
    assert pipelined.executor_fallbacks == 0
    assert [r.backend for r in stats.records] == ["parallel"] * NUM_BATCHES


def test_unrecoverable_fault_degrades_to_serial_in_flight():
    """When resurrection budget runs out mid-handle, the serial fallback
    must complete the batch *on the dispatcher thread* and the run must
    still produce the sequential answer."""
    injector = TaskFaultInjector().poison(1, "map", 0, times=5)
    reference = _run("tweets", "prompt", "serial", 1)
    pipelined = _run(
        "tweets", "prompt", "parallel", 2, injector=injector
    )
    _assert_equivalent(reference, pipelined)
    assert pipelined.executor_fallbacks >= 1


def test_overlap_accounting_tells_the_truth():
    """Wall-clock accounting: the eager serial handle reports zero
    overlap (the driver *was* blocked inside submit), the async parallel
    handle reports non-negative overlap and wait, and none of it exists
    at depth 1."""
    sequential = _run("synd-skewed", "prompt", "parallel", 1)
    assert sequential.stats.total_pipeline_wait_seconds() == 0.0
    assert sequential.stats.total_pipeline_overlap_seconds() == 0.0

    eager = _run("synd-skewed", "prompt", "serial", 2)
    assert eager.stats.total_pipeline_overlap_seconds() == 0.0

    pipelined = _run("synd-skewed", "prompt", "parallel", 2)
    assert pipelined.stats.total_pipeline_wait_seconds() >= 0.0
    assert pipelined.stats.total_pipeline_overlap_seconds() >= 0.0


def test_pipeline_observability_reports_the_overlap():
    """Tracing must not steer the pipelined run, and must record it:
    ``pipeline_wait`` spans under the batch spans, ``execute`` spans on
    the dispatcher thread, and the depth gauge + stall histogram."""
    obs_cfg = ObservabilityConfig()
    traced = _run(
        "synd-skewed", "prompt", "parallel", 2, observability=obs_cfg
    )
    untraced = _run("synd-skewed", "prompt", "parallel", 2)
    _assert_equivalent(untraced, traced)

    spans = traced.observability.tracer.spans
    by_name = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)
    assert len(by_name["pipeline_wait"]) == NUM_BATCHES
    assert len(by_name["execute"]) == NUM_BATCHES
    batch_ids = {s.span_id for s in by_name["batch"]}
    for span in by_name["pipeline_wait"] + by_name["execute"]:
        assert span.parent_id in batch_ids  # cross-thread link preserved

    snapshot = traced.observability.metrics.as_dict()
    assert snapshot["prompt_pipeline_depth"] == 2.0
    stall = snapshot["prompt_pipeline_stall_seconds"]
    assert stall["count"] == NUM_BATCHES

    # depth 1 keeps the metric namespace exactly as it was pre-pipeline
    sequential = _run(
        "synd-skewed", "prompt", "parallel", 1,
        observability=ObservabilityConfig(),
    )
    names = set(sequential.observability.metrics.as_dict())
    assert not any(n.startswith("prompt_pipeline") for n in names)
