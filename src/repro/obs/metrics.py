"""Pull-based metrics registry: counters, gauges, fixed-bucket histograms.

Engine layers *publish* into a :class:`MetricsRegistry`; nothing is
pushed anywhere — exporters (:mod:`repro.obs.export`) snapshot the
registry on demand, Prometheus-style.  Metric identity is
``(name, labels)``: asking the registry for the same name and label set
returns the same instrument, so publishers never need to coordinate.

Naming follows the Prometheus conventions the catalog in
``docs/observability.md`` documents: ``prompt_*`` prefix, ``_total``
suffix on counters, ``_seconds`` on time histograms.  The
:class:`NullMetricsRegistry` default turns every instrument into a
shared no-op so the disabled path costs nothing and cannot perturb the
engine's determinism contract.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "DEFAULT_BUCKETS",
]

#: default histogram buckets (seconds-scale, Prometheus-style)
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0, 30.0,
)

Labels = tuple[tuple[str, str], ...]


def _labelkey(labels: Mapping[str, str] | None) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count.

    Updates are guarded by a per-instrument lock: the pipelined driver
    publishes from two threads (the event loop and the executor's
    dispatch thread) and an unguarded ``+=`` read-modify-write between
    them can lose increments.
    """

    kind = "counter"
    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-observed value; may go up or down (lock-guarded like Counter)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Fixed-bucket histogram with cumulative counts, sum and count.

    One lock covers sum/count/bucket updates so a concurrent publisher
    on the dispatch thread can never leave the three views inconsistent.
    """

    kind = "histogram"
    __slots__ = (
        "name", "labels", "buckets", "bucket_counts", "sum", "count", "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.bucket_counts = [0] * len(bounds)  # non-cumulative per bucket
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError(f"histogram {self.name} observed NaN")
        ix = bisect_left(self.buckets, value)
        with self._lock:
            self.sum += value
            self.count += 1
            if ix < len(self.buckets):
                self.bucket_counts[ix] += 1

    def cumulative_counts(self) -> list[int]:
        """Per-bucket counts accumulated the Prometheus ``le`` way."""
        out, running = [], 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out


class MetricsRegistry:
    """Get-or-create instrument store keyed by ``(name, labels)``."""

    enabled: bool = True

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, Labels], Any] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get(
        self,
        cls: type,
        name: str,
        help: str,
        labels: Mapping[str, str] | None,
        **kwargs: Any,
    ) -> Any:
        key = (name, _labelkey(labels))
        with self._lock:
            known = self._kinds.get(name)
            if known is not None and known != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {known}, not a {cls.kind}"
                )
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, key[1], **kwargs)
                self._metrics[key] = metric
                self._kinds[name] = cls.kind
                if help:
                    self._help[name] = help
        return metric

    def counter(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Mapping[str, str] | None = None
    ) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    # ------------------------------------------------------------------
    def collect(self) -> list[Any]:
        """Every instrument, ordered by (name, labels) for stable output."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def help_for(self, name: str) -> str:
        return self._help.get(name, "")

    def kind_of(self, name: str) -> str | None:
        return self._kinds.get(name)

    def as_dict(self) -> dict[str, Any]:
        """Plain-data snapshot (JSONL export and tests)."""
        out: dict[str, Any] = {}
        for metric in self.collect():
            key = metric.name
            if metric.labels:
                key += "{" + ",".join(f"{k}={v}" for k, v in metric.labels) + "}"
            if metric.kind == "histogram":
                out[key] = {
                    "sum": metric.sum,
                    "count": metric.count,
                    "buckets": dict(
                        zip(map(str, metric.buckets), metric.cumulative_counts())
                    ),
                }
            else:
                out[key] = metric.value
        return out

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    def merge_from(
        self,
        other: "MetricsRegistry",
        extra_labels: Mapping[str, str] | None = None,
    ) -> None:
        """Fold another registry's instruments into this one.

        The sharded driver rolls every shard engine's registry up into
        one cross-shard registry with ``extra_labels={"shard": "i"}``:
        counters accumulate, gauges take the source's last value, and
        histograms add bucket counts/sum/count.  With distinct extra
        labels per source registry the folded series never collide —
        and they coexist with same-name unlabeled series, since metric
        identity is ``(name, labels)``.
        """
        extra = dict(extra_labels or {})
        for metric in other.collect():
            labels = {**dict(metric.labels), **extra}
            help = other.help_for(metric.name)
            if metric.kind == "counter":
                self.counter(metric.name, help, labels).inc(metric.value)
            elif metric.kind == "gauge":
                self.gauge(metric.name, help, labels).set(metric.value)
            elif metric.kind == "histogram":
                mine = self.histogram(
                    metric.name, help, labels, buckets=metric.buckets
                )
                if mine.buckets != metric.buckets:
                    raise ValueError(
                        f"histogram {metric.name!r} bucket mismatch on merge"
                    )
                with mine._lock:
                    for i, c in enumerate(metric.bucket_counts):
                        mine.bucket_counts[i] += c
                    mine.sum += metric.sum
                    mine.count += metric.count


class _NullInstrument:
    """One object that absorbs every instrument method as a no-op."""

    kind = "null"
    name = ""
    labels: Labels = ()

    def inc(self, amount: float = 1.0) -> None: ...
    def dec(self, amount: float = 1.0) -> None: ...
    def set(self, value: float) -> None: ...
    def observe(self, value: float) -> None: ...


class NullMetricsRegistry(MetricsRegistry):
    """The disabled registry: hands out a shared no-op instrument."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null = _NullInstrument()

    def counter(self, name, help="", labels=None):  # type: ignore[override]
        return self._null

    def gauge(self, name, help="", labels=None):  # type: ignore[override]
        return self._null

    def histogram(self, name, help="", labels=None, buckets=DEFAULT_BUCKETS):  # type: ignore[override]
        return self._null

    def merge_from(self, other, extra_labels=None):  # type: ignore[override]
        return None


#: shared no-op registry — the default wherever metrics are accepted
NULL_METRICS = NullMetricsRegistry()
