"""Differential harness: streaming dispatch is bit-identical to eager.

``streaming_dispatch=True`` changes *when* Map tasks launch — each
block's attempt-0 goes in flight while Algorithm 2's plan tail is still
running — but must never change *what* the engine computes.  Every case
runs the same seeded workload with eager dispatch (the reference) and
with streaming dispatch and requires

- byte-identical windowed answers (pickled per window, like the
  pipeline-equivalence harness),
- equal ``RunStats`` records field for field — streaming's wall-clock
  observations are ``compare=False`` by design, the simulated timeline
  is not,
- identical backpressure verdicts, state stores and recoveries.

Coverage crosses executors (the parallel backend truly interleaves;
the serial backend drains the stream eagerly through the base
``submit_batch_stream``), pipeline depths 1 and 2 (streamed plans ride
in-flight handles, resolved at join time), both ingest kernels, and the
fault-tolerance machinery *on prelaunched attempts*: task crashes
landing mid-plan and a worker poison that breaks the pool while the
plan is still streaming blocks into it.
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine.engine import EngineConfig, MicroBatchEngine
from repro.engine.faults import TaskFaultInjector
from repro.obs import ObservabilityConfig
from repro.partitioners import make_partitioner
from repro.queries import wordcount_query
from repro.workloads import ConstantRate, synd_source, tweets_source

NUM_BATCHES = 5

WORKLOADS = {
    "synd-skewed": lambda: synd_source(
        1.4, num_keys=300, arrival=ConstantRate(1_000.0), seed=11
    ),
    "tweets": lambda: tweets_source(rate=800.0, seed=42),
}

PARTITIONERS = ("prompt", "hash")
EXECUTORS = ("serial", "parallel")
KERNELS = ("python", "numpy")


def _run(
    workload: str,
    partitioner: str,
    executor: str,
    *,
    streaming: bool,
    depth: int = 1,
    seed: int = 13,
    ingest_kernel: str | None = None,
    injector: TaskFaultInjector | None = None,
    observability: ObservabilityConfig | None = None,
):
    cfg = EngineConfig(
        batch_interval=1.0,
        num_blocks=4,
        num_reducers=4,
        executor=executor,
        executor_workers=2,
        run_seed=seed,
        pipeline_depth=depth,
        ingest_kernel=ingest_kernel,
        streaming_dispatch=streaming,
        observability=observability,
    )
    engine = MicroBatchEngine(
        make_partitioner(partitioner),
        wordcount_query(window_length=3.0),
        cfg,
        task_fault_injector=injector,
    )
    return engine.run(WORKLOADS[workload](), NUM_BATCHES)


def _assert_equivalent(reference, streamed):
    """Dispatch mode never leaks into results: windows, stats, control."""
    assert len(reference.window_answers) == len(streamed.window_answers)
    for r_window, s_window in zip(
        reference.window_answers, streamed.window_answers
    ):
        assert pickle.dumps(r_window) == pickle.dumps(s_window)
    assert reference.stats.records == streamed.stats.records
    assert reference.stats.batch_interval == streamed.stats.batch_interval
    assert reference.scaling_history == streamed.scaling_history
    assert reference.backpressure.triggered == streamed.backpressure.triggered
    assert reference.stable == streamed.stable
    assert len(reference.recoveries) == len(streamed.recoveries)
    assert len(reference.state_store) == len(streamed.state_store)
    for record in reference.stats.records:
        if record.index in reference.state_store:
            assert dict(reference.state_store.get(record.index).output) == dict(
                streamed.state_store.get(record.index).output
            )


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("partitioner", PARTITIONERS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_streaming_matches_eager(workload, partitioner, executor):
    """The tentpole contract: streamed == eager, on both executors and
    both partitioning paths (prompt streams a real incremental plan;
    hash replays an eager one through the same API)."""
    reference = _run(workload, partitioner, executor, streaming=False)
    streamed = _run(workload, partitioner, executor, streaming=True)
    _assert_equivalent(reference, streamed)
    if executor == "parallel":
        assert streamed.backend_name == "parallel"
        assert streamed.executor_fallbacks == 0
        assert streamed.stats.backends_used() == ("parallel",)


@pytest.mark.parametrize("depth", (1, 2))
@pytest.mark.parametrize("kernel", KERNELS)
def test_streaming_matches_eager_across_kernels_and_depths(kernel, depth):
    """Both ingest kernels stream their plans (the numpy kernel through
    its own incremental greedy pass) at both pipeline depths."""
    if kernel == "numpy":
        pytest.importorskip("numpy")
    reference = _run(
        "synd-skewed", "prompt", "parallel",
        streaming=False, depth=depth, ingest_kernel=kernel,
    )
    streamed = _run(
        "synd-skewed", "prompt", "parallel",
        streaming=True, depth=depth, ingest_kernel=kernel,
    )
    _assert_equivalent(reference, streamed)
    assert streamed.executor_fallbacks == 0


@pytest.mark.parametrize("seed", (0, 1, 7, 99))
def test_streaming_matches_eager_across_seeds(seed):
    """The contract holds for any run seed, not one lucky constant."""
    reference = _run(
        "synd-skewed", "prompt", "parallel", streaming=False, seed=seed
    )
    streamed = _run(
        "synd-skewed", "prompt", "parallel", streaming=True, seed=seed
    )
    _assert_equivalent(reference, streamed)


def test_streaming_rides_the_pipelined_driver():
    """Depth 2 parks streamed plans inside in-flight handles; the plan
    resolves at join time and the run equals the sequential eager one."""
    reference = _run("tweets", "prompt", "serial", streaming=False, depth=1)
    streamed = _run("tweets", "prompt", "parallel", streaming=True, depth=2)
    _assert_equivalent(reference, streamed)
    assert streamed.executor_fallbacks == 0


@pytest.mark.parametrize("partitioner", PARTITIONERS)
def test_task_crashes_on_prelaunched_attempts(partitioner):
    """A crash injected into attempt 0 of a *prelaunched* Map task (and
    a Reduce retry behind it) must be retried by the adopted wave loop
    exactly like an eagerly launched one — invisible in the results."""
    injector = (
        TaskFaultInjector()
        .crash(0, "map", 0, times=1)
        .crash(1, "reduce", 1, times=2)
    )
    reference = _run("synd-skewed", partitioner, "serial", streaming=False)
    streamed = _run(
        "synd-skewed", partitioner, "parallel",
        streaming=True, injector=injector,
    )
    _assert_equivalent(reference, streamed)
    assert streamed.stats.total_task_retries() >= 3
    assert streamed.executor_fallbacks == 0
    assert streamed.stats.backends_used() == ("parallel",)


@pytest.mark.parametrize("kernel", KERNELS)
def test_pool_kill_during_streamed_dispatch(kernel):
    """The acceptance-criteria case: a worker poison breaks the process
    pool while the plan is still streaming blocks into it.  Prelaunching
    stops, pickling continues, and the wave loop's salvage path rebuilds
    the pool once — byte-identical, zero serial fallbacks."""
    if kernel == "numpy":
        pytest.importorskip("numpy")
    injector = TaskFaultInjector().poison(2, "map", 1, times=1)
    reference = _run(
        "synd-skewed", "prompt", "serial",
        streaming=False, ingest_kernel=kernel,
    )
    streamed = _run(
        "synd-skewed", "prompt", "parallel",
        streaming=True, ingest_kernel=kernel, injector=injector,
    )
    _assert_equivalent(reference, streamed)
    stats = streamed.stats
    assert stats.total_pool_resurrections() == 1
    by_index = {r.index: r for r in stats.records}
    assert by_index[2].pool_resurrections == 1
    assert streamed.executor_fallbacks == 0
    assert [r.backend for r in stats.records] == ["parallel"] * NUM_BATCHES


def test_pool_kill_with_streaming_and_pipelining():
    """Pool kill while a streamed plan is in an in-flight depth-2 handle:
    resurrection happens on the dispatcher thread mid-stream."""
    injector = TaskFaultInjector().poison(2, "map", 1, times=1)
    reference = _run("synd-skewed", "prompt", "serial", streaming=False)
    streamed = _run(
        "synd-skewed", "prompt", "parallel",
        streaming=True, depth=2, injector=injector,
    )
    _assert_equivalent(reference, streamed)
    assert streamed.stats.total_pool_resurrections() == 1
    assert streamed.executor_fallbacks == 0


def test_unrecoverable_fault_degrades_to_serial_mid_stream():
    """When resurrection budget runs out on a streamed batch, the serial
    fallback drains the plan and completes the batch — the run still
    produces the eager answer."""
    injector = TaskFaultInjector().poison(1, "map", 0, times=5)
    reference = _run("tweets", "prompt", "serial", streaming=False)
    streamed = _run(
        "tweets", "prompt", "parallel", streaming=True, injector=injector
    )
    _assert_equivalent(reference, streamed)
    assert streamed.executor_fallbacks >= 1


def test_streaming_off_is_the_legacy_path_exactly():
    """``streaming_dispatch=False`` must be indistinguishable from a
    config that never mentions the knob."""
    explicit = _run("synd-skewed", "prompt", "parallel", streaming=False)
    cfg = EngineConfig(
        batch_interval=1.0, num_blocks=4, num_reducers=4,
        executor="parallel", executor_workers=2, run_seed=13,
    )
    engine = MicroBatchEngine(
        make_partitioner("prompt"), wordcount_query(window_length=3.0), cfg
    )
    implicit = engine.run(WORKLOADS["synd-skewed"](), NUM_BATCHES)
    _assert_equivalent(implicit, explicit)


def test_streaming_observability_reports_the_overlap():
    """Tracing must not steer the streamed run, and must record it:
    ``plan_emit`` spans per emission, per-block ``map_dispatch`` spans
    on the parallel backend, and the overlap histogram."""
    traced = _run(
        "synd-skewed", "prompt", "parallel",
        streaming=True, observability=ObservabilityConfig(),
    )
    untraced = _run("synd-skewed", "prompt", "parallel", streaming=True)
    _assert_equivalent(untraced, traced)

    spans = traced.observability.tracer.spans
    by_name: dict[str, list] = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)
    # one plan_emit per emission plus the final (None) probe per batch
    assert len(by_name["plan_emit"]) == NUM_BATCHES * (4 + 1)
    assert len(by_name["map_dispatch"]) == NUM_BATCHES * 4
    for span in by_name["map_dispatch"]:
        assert span.attrs["task_id"] in range(4)

    snapshot = traced.observability.metrics.as_dict()
    overlap = snapshot["prompt_plan_dispatch_overlap_seconds"]
    assert overlap["count"] == NUM_BATCHES

    # eager runs keep the namespace exactly as it was pre-streaming
    eager = _run(
        "synd-skewed", "prompt", "parallel",
        streaming=False, observability=ObservabilityConfig(),
    )
    names = set(eager.observability.metrics.as_dict())
    assert "prompt_plan_dispatch_overlap_seconds" not in names
    assert not any(s.name in ("plan_emit", "map_dispatch")
                   for s in eager.observability.tracer.spans)


def test_serial_streaming_traces_a_single_plan_emit_drain():
    """The base ``submit_batch_stream`` drains the whole plan inside one
    ``plan_emit`` span per batch — visible, but with no map_dispatch."""
    traced = _run(
        "synd-skewed", "prompt", "serial",
        streaming=True, observability=ObservabilityConfig(),
    )
    names = [s.name for s in traced.observability.tracer.spans]
    assert names.count("plan_emit") == NUM_BATCHES
    assert "map_dispatch" not in names


def test_completion_worker_reports_lag_at_depth2():
    """The pipelined driver's deferred ``_complete_batch`` work records
    a completion-lag observation per batch; depth 1 never does."""
    deep = _run(
        "synd-skewed", "prompt", "parallel",
        streaming=False, depth=2, observability=ObservabilityConfig(),
    )
    lag = deep.observability.metrics.as_dict()[
        "prompt_completion_lag_seconds"
    ]
    assert lag["count"] == NUM_BATCHES

    shallow = _run(
        "synd-skewed", "prompt", "parallel",
        streaming=False, depth=1, observability=ObservabilityConfig(),
    )
    names = set(shallow.observability.metrics.as_dict())
    assert "prompt_completion_lag_seconds" not in names
