#!/usr/bin/env python3
"""Compare all partitioning techniques under growing data skew.

Recreates the intuition behind Figures 10 and 11d on a single batch:
for each Zipf exponent, partition the same tuples with every technique
and report the cost-model metrics (BSI/BCI/KSR/MPI) plus the simulated
processing time (max Map task + max Reduce task, Eqn. 1 of the paper).

Watch hashing's processing time explode with skew while Prompt stays
flat — the mechanism behind the paper's 2x-5x throughput gap.

Run:  python examples/skew_comparison.py
"""

from __future__ import annotations

from repro.core import BatchInfo, evaluate_partition
from repro.engine import TaskCostModel, execute_batch_tasks
from repro.partitioners import make_partitioner
from repro.queries import wordcount_query
from repro.workloads import synd_source

TECHNIQUES = ("time", "shuffle", "hash", "pk2", "pk5", "cam", "prompt")
EXPONENTS = (0.2, 1.0, 1.4, 2.0)
RATE = 20_000.0
NUM_BLOCKS = 8
NUM_REDUCERS = 8


def main() -> None:
    query = wordcount_query()
    cost_model = TaskCostModel()
    info = BatchInfo(0, 0.0, 1.0)

    for z in EXPONENTS:
        source = synd_source(z, num_keys=20_000, rate=RATE, seed=3)
        tuples = source.tuples_between(0.0, 1.0)
        hot_share = max(
            sum(1 for t in tuples if t.key == k) for k in {t.key for t in tuples}
        ) / len(tuples)
        print(f"\n=== Zipf z={z}  ({len(tuples)} tuples, hottest key "
              f"{hot_share:.0%} of batch) ===")
        print(f"{'technique':>10}  {'BSI':>8}  {'BCI':>6}  {'KSR':>6}  "
              f"{'MPI':>6}  {'processing':>10}")
        for name in TECHNIQUES:
            partitioner = make_partitioner(name)
            batch = partitioner.partition(tuples, NUM_BLOCKS, info)
            quality = evaluate_partition(batch)
            execution = execute_batch_tasks(
                batch, query, partitioner, NUM_REDUCERS, cost_model
            )
            processing = max(execution.map_durations) + max(
                execution.reduce_durations
            )
            print(
                f"{name:>10}  {quality.bsi:>8.1f}  {quality.bci:>6.1f}"
                f"  {quality.ksr:>6.3f}  {quality.mpi:>6.3f}  {processing:>9.3f}s"
            )


if __name__ == "__main__":
    main()
