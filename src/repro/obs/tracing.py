"""Structured span tracing for the micro-batch engine.

A *span* is one named, timed piece of work with an optional parent —
the driver emits a tree per run::

    run
    └── batch (index=k)
        ├── buffer
        ├── partition
        ├── map_task (task_id=i, attempt, pid)   # one per Map task
        ├── shuffle
        ├── reduce_task (task_id=j, attempt, pid)
        └── window_merge

Two kinds of spans exist:

- **driver spans** are opened/closed on a stack (``Tracer.span`` or the
  explicit ``start``/``end`` pair), so nesting follows the call
  structure for free;
- **worker spans** are measured *inside* a worker process (a
  :class:`WorkerSpan` riding back on the task result payload) and
  stitched into the driver tree afterwards with :meth:`Tracer.record`,
  tagged with the worker pid — the only way per-attempt Map/Reduce
  timing can reach the driver across a process boundary.

Timestamps are ``time.time()`` epoch seconds: the one clock that is
comparable across the driver and its worker processes.  Nothing here
enters the engine's determinism contract — spans are observational
wall-clock, exactly like the existing ``compare=False`` measured-seconds
fields — and the :class:`NullTracer` default makes every call a no-op so
the disabled path stays free.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

__all__ = ["Span", "WorkerSpan", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass(slots=True)
class Span:
    """One named, timed unit of work in the run's trace tree."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    end: float = 0.0
    pid: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        return max(0.0, self.end - self.start)

    @property
    def finished(self) -> bool:
        return self.end >= self.start and self.end > 0.0


@dataclass(frozen=True, slots=True)
class WorkerSpan:
    """Task-body timing measured inside a worker process.

    Created by the worker entry points when tracing is on, shipped back
    on the task result (``compare=False``, so differential equality is
    untouched), and stitched into the driver trace by the executor.
    """

    pid: int
    start: float
    end: float


class Tracer:
    """Collects a tree of spans for one run.

    Thread-aware to exactly the degree the pipelined driver needs: the
    open-span stack is *per thread* (the driver's buffer/partition spans
    and the dispatch thread's execute/shuffle spans nest independently,
    parented explicitly across the boundary), while span-id allocation
    and the finished-span list are guarded by a lock so concurrent
    ``end``/``record`` calls never lose a span.  Worker *processes*
    still never see the tracer — their measurements travel back as
    :class:`WorkerSpan` payloads.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 0

    @property
    def _stack(self) -> list[Span]:
        """The calling thread's open-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- driver spans ---------------------------------------------------
    def start(self, name: str, *, parent: int | None = None, **attrs: Any) -> Span:
        """Open a span; parent defaults to the innermost open span."""
        if parent is None and self._stack:
            parent = self._stack[-1].span_id
        span = Span(
            name=name,
            span_id=self._alloc_id(),
            parent_id=parent,
            start=time.time(),
            pid=os.getpid(),
            attrs=dict(attrs),
        )
        self._stack.append(span)
        return span

    def end(self, span: Span, **attrs: Any) -> Span:
        """Close ``span`` (and anything left open inside it) and keep it.

        Unwinds the *calling thread's* stack — a span must be ended on
        the thread that started it (both the driver loop and the
        dispatch thread obey this by construction).
        """
        stack = self._stack
        while stack:
            top = stack.pop()
            if top is span:
                break
        span.end = time.time()
        if attrs:
            span.attrs.update(attrs)
        with self._lock:
            self.spans.append(span)
        return span

    @contextmanager
    def span(
        self, name: str, *, parent: int | None = None, **attrs: Any
    ) -> Iterator[Span]:
        s = self.start(name, parent=parent, **attrs)
        try:
            yield s
        finally:
            self.end(s)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # -- stitched spans -------------------------------------------------
    def record(
        self,
        name: str,
        start: float,
        end: float,
        *,
        parent: int | None = None,
        pid: int | None = None,
        **attrs: Any,
    ) -> Span:
        """Add an already-measured span (e.g. a worker-side task body)."""
        if parent is None and self._stack:
            parent = self._stack[-1].span_id
        span = Span(
            name=name,
            span_id=self._alloc_id(),
            parent_id=parent,
            start=start,
            end=end,
            pid=pid if pid is not None else os.getpid(),
            attrs=dict(attrs),
        )
        with self._lock:
            self.spans.append(span)
        return span

    def event(self, name: str, *, parent: int | None = None, **attrs: Any) -> Span:
        """Zero-duration marker (retry, timeout trip, speculation launch)."""
        now = time.time()
        return self.record(name, now, now, parent=parent, **attrs)

    # -- introspection --------------------------------------------------
    def _alloc_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def tree_signature(self) -> tuple:
        """Wall-clock-free structural fingerprint of the trace.

        Nested ``(name, sorted(child signatures))`` tuples: two runs of
        the same seeded workload must produce *equal* signatures no
        matter how long anything took or which worker pids served the
        tasks — the determinism property the trace layer must uphold.
        Children sort by their own signature, so racing completion
        orders (retries under injected faults) cannot perturb it.
        """
        children: dict[Optional[int], list[Span]] = {}
        for span in self.spans:
            children.setdefault(span.parent_id, []).append(span)
        known = {span.span_id for span in self.spans}

        def sig(span: Span) -> tuple:
            kids = sorted(sig(c) for c in children.get(span.span_id, []))
            return (span.name, tuple(kids))

        roots = [
            s
            for s in self.spans
            if s.parent_id is None or s.parent_id not in known
        ]
        return tuple(sorted(sig(r) for r in roots))

    def __len__(self) -> int:
        return len(self.spans)


class NullTracer(Tracer):
    """The disabled tracer: every operation is a cheap no-op.

    Shares one dummy span so ``with tracer.span(...)`` costs a couple of
    attribute loads and nothing else — the default path must add no
    measurable overhead and never perturb determinism.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._dummy = Span(name="", span_id=0, parent_id=None, start=0.0)

    def start(self, name: str, *, parent: int | None = None, **attrs: Any) -> Span:
        return self._dummy

    def end(self, span: Span, **attrs: Any) -> Span:
        return self._dummy

    @contextmanager
    def span(
        self, name: str, *, parent: int | None = None, **attrs: Any
    ) -> Iterator[Span]:
        yield self._dummy

    def record(
        self,
        name: str,
        start: float,
        end: float,
        *,
        parent: int | None = None,
        pid: int | None = None,
        **attrs: Any,
    ) -> Span:
        return self._dummy

    def event(self, name: str, *, parent: int | None = None, **attrs: Any) -> Span:
        return self._dummy


#: shared no-op tracer — the default everywhere a tracer is accepted
NULL_TRACER = NullTracer()
