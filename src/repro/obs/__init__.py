"""repro.obs — zero-dependency observability for the micro-batch engine.

Three pieces, threaded through every engine layer:

- :mod:`repro.obs.tracing` — nested span tracer
  (``run -> batch -> {buffer, partition, map_task, shuffle,
  reduce_task, window_merge}``) with worker-side span stitching;
- :mod:`repro.obs.metrics` — pull-based registry of counters, gauges
  and fixed-bucket histograms (catalog in ``docs/observability.md``);
- :mod:`repro.obs.export` — Chrome-trace JSON, JSONL logs, a
  Prometheus-text snapshot, and the ``repro trace summarize`` backend.

Enable per run via ``EngineConfig(observability=ObservabilityConfig())``
— the default everywhere else is the :data:`~repro.obs.tracing.NULL_TRACER`
/ :data:`~repro.obs.metrics.NULL_METRICS` pair, whose operations are
no-ops: the disabled path adds no measurable overhead and never touches
the engine's determinism contract (all observability state lives outside
dataclass equality, like the existing ``compare=False`` wall-clock
fields).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from .export import (
    chrome_trace_events,
    format_trace_summary,
    parse_prometheus,
    prometheus_text,
    read_chrome_trace,
    summarize_trace,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from .metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from .tracing import NULL_TRACER, NullTracer, Span, Tracer, WorkerSpan

__all__ = [
    "ObservabilityConfig",
    "RunObservability",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "WorkerSpan",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "chrome_trace_events",
    "write_chrome_trace",
    "read_chrome_trace",
    "write_jsonl",
    "prometheus_text",
    "write_prometheus",
    "parse_prometheus",
    "summarize_trace",
    "format_trace_summary",
]


@dataclass(frozen=True)
class ObservabilityConfig:
    """Per-run observability knob (``EngineConfig.observability``).

    Frozen so it can live inside the frozen ``EngineConfig``.  Paths are
    optional: with ``enabled=True`` and no paths, spans and metrics stay
    in memory on ``RunResult.observability`` for programmatic use.
    """

    enabled: bool = True
    #: Chrome trace-event JSON written at the end of the run
    trace_path: Optional[str] = None
    #: Prometheus-text metrics snapshot written at the end of the run
    metrics_path: Optional[str] = None
    #: combined span+metric JSONL log written at the end of the run
    jsonl_path: Optional[str] = None


class RunObservability:
    """Live tracer + metrics registry for one engine run.

    Built by the engine from an :class:`ObservabilityConfig`; exposed on
    ``RunResult.observability`` so callers can inspect spans and metrics
    or export them after the fact.
    """

    def __init__(self, config: ObservabilityConfig | None = None) -> None:
        self.config = config
        active = config is not None and config.enabled
        self.tracer: Tracer = Tracer() if active else NULL_TRACER
        self.metrics: MetricsRegistry = (
            MetricsRegistry() if active else NULL_METRICS
        )

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    # ------------------------------------------------------------------
    def export_chrome_trace(self, path: str | Path) -> Path:
        return write_chrome_trace(self.tracer.spans, path)

    def export_prometheus(self, path: str | Path) -> Path:
        return write_prometheus(self.metrics, path)

    def export_jsonl(self, path: str | Path) -> Path:
        return write_jsonl(path, self.tracer.spans, self.metrics)

    def flush(self) -> list[Path]:
        """Write every export the config asked for; returns written paths."""
        written: list[Path] = []
        if self.config is None or not self.enabled:
            return written
        if self.config.trace_path:
            written.append(self.export_chrome_trace(self.config.trace_path))
        if self.config.metrics_path:
            written.append(self.export_prometheus(self.config.metrics_path))
        if self.config.jsonl_path:
            written.append(self.export_jsonl(self.config.jsonl_path))
        return written
