"""Batch job scheduler: FIFO, one-job-at-a-time pipeline execution.

Spark Streaming's driver runs batch jobs sequentially in submission
order; a batch whose predecessor overruns waits in the scheduler queue
(Cases II-IV of Figure 2 and the queueing the paper's stability
definition forbids).  The scheduler lives on the simulation event loop:
``submit`` is called at the batch's ready time (its heartbeat) and the
completion callback fires at the simulated finish instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .simulation import EventLoop

__all__ = ["ScheduledJob", "PipelineScheduler"]


@dataclass(slots=True)
class ScheduledJob:
    """One batch job's timeline through the scheduler."""

    index: int
    ready_at: float
    duration: float
    start: float
    finish: float

    @property
    def queue_delay(self) -> float:
        return self.start - self.ready_at


class PipelineScheduler:
    """Sequential batch-job execution with queueing."""

    def __init__(self, loop: EventLoop) -> None:
        self.loop = loop
        self._busy_until = 0.0
        self._jobs: list[ScheduledJob] = []

    @property
    def jobs(self) -> list[ScheduledJob]:
        return list(self._jobs)

    @property
    def busy_until(self) -> float:
        return self._busy_until

    def queue_depth(self, now: float) -> int:
        """Jobs submitted but not yet started at ``now``."""
        return sum(1 for j in self._jobs if j.start > now)

    def submit(
        self,
        index: int,
        duration: float,
        on_finish: Optional[Callable[[ScheduledJob], None]] = None,
        *,
        ready_at: Optional[float] = None,
    ) -> ScheduledJob:
        """Submit a batch job at the current simulated instant.

        The job starts when the pipeline frees up (FIFO) and finishes
        ``duration`` later; ``on_finish`` is scheduled at that instant.

        ``ready_at`` overrides the job's ready time (default: the loop's
        current instant).  The pipelined driver needs this: it joins an
        in-flight batch at a *later* heartbeat, but the batch became
        ready for the processing pipeline at its own heartbeat — using
        ``loop.now`` there would inflate every queue-delay figure and
        break the depth-1/depth-2 equivalence of the simulated timeline.
        With an explicit ``ready_at``, ``on_finish`` must be None (a
        completion callback could land in the loop's past).
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        if ready_at is not None and on_finish is not None:
            raise ValueError(
                "ready_at and on_finish are mutually exclusive: an "
                "explicit ready time may precede loop.now, where a "
                "finish event cannot be scheduled"
            )
        ready = self.loop.now if ready_at is None else ready_at
        start = max(ready, self._busy_until)
        finish = start + duration
        self._busy_until = finish
        job = ScheduledJob(
            index=index, ready_at=ready, duration=duration, start=start, finish=finish
        )
        self._jobs.append(job)
        if on_finish is not None:
            # Priority -1: completions at an instant precede the
            # heartbeat planned for the same instant, so elasticity
            # decisions see every batch that has truly finished.
            self.loop.schedule(
                finish,
                lambda: on_finish(job),
                priority=-1,
                label=f"finish-batch-{index}",
            )
        return job
