"""Declarative experiment matrix: grid × engine runs × SQLite store.

An :class:`ExperimentGrid` declares experiments as a cross-product of
the canonical axes (workload × partitioner × backend × ingest_kernel ×
pipeline_depth × fault_profile); each cell is keyed by a stable config
hash and executed through the existing :func:`~repro.bench.harness.
run_at_rate` harness with observability enabled, so every recorded row
carries a ``MetricsRegistry.as_dict()`` snapshot alongside its scalar
metrics.

:func:`fill` is the resumable runner: it diffs the grid's hash set
against what the store already holds for the current git SHA and
environment and runs *only* the missing/invalidated cells — running it
twice in a row executes zero cells the second time, while a new commit
(new SHA) re-runs the grid and extends every trajectory by one point.
:func:`trajectory_rows` / :func:`render_matrix_report` read the
trajectories back for the CLI (``repro bench report``), and
:mod:`repro.bench.regress` judges them against per-environment noise
bands (``repro bench regress``).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from itertools import product
from time import perf_counter
from typing import Any, Callable, Mapping, Optional

from ..engine.engine import EngineConfig
from ..engine.faults import TaskFaultInjector
from ..obs import ObservabilityConfig
from ..partitioners.registry import make_partitioner
from ..queries.wordcount import wordcount_query
from ..workloads import key_churn_source, synd_source, tweets_source
from .harness import run_at_rate
from .report import sparkline
from .reporting import format_table
from .store import (
    CellResult,
    ResultsStore,
    config_hash,
    current_git_sha,
    environment_fingerprint,
    environment_hash,
)

__all__ = [
    "ExperimentGrid",
    "FillReport",
    "GRIDS",
    "MatrixCell",
    "QUICK_GRID",
    "FULL_GRID",
    "TINY_GRID",
    "fill",
    "render_matrix_report",
    "run_cell",
    "trajectory_rows",
]

log = logging.getLogger(__name__)

#: workload name → source factory (rate, num_keys, seed)
MATRIX_WORKLOADS: dict[str, Callable[[float, int, int], Any]] = {
    "synd-z0.8": lambda rate, keys, seed: synd_source(
        0.8, num_keys=keys, rate=rate, seed=seed
    ),
    "synd-z1.4": lambda rate, keys, seed: synd_source(
        1.4, num_keys=keys, rate=rate, seed=seed
    ),
    "tweets": lambda rate, keys, seed: tweets_source(
        vocabulary=keys, rate=rate, seed=seed
    ),
    "churn": lambda rate, keys, seed: key_churn_source(
        rate=rate, num_keys=keys, seed=seed
    ),
}

#: fault profile name → TaskFaultInjector factory (parallel backend only)
FAULT_PROFILES: dict[str, Callable[[], Optional[TaskFaultInjector]]] = {
    "none": lambda: None,
    # one deterministic crash of batch 1's first Map attempt: the
    # retry path must stay inside the noise band of a clean run
    "map-crash": lambda: TaskFaultInjector().crash(1, "map", 0, times=1),
}


@dataclass(frozen=True)
class MatrixCell:
    """One point of the experiment grid, identified by its params."""

    workload: str
    partitioner: str
    backend: str = "serial"
    ingest_kernel: str = "default"
    pipeline_depth: int = 1
    fault_profile: str = "none"
    #: 0 = single engine; N >= 1 = sharded topology with N engines
    shards: int = 0
    #: stream Algorithm 2's plan into Map dispatch (parallel overlap)
    streaming_dispatch: bool = False

    def params(self) -> dict[str, Any]:
        out = {
            "workload": self.workload,
            "partitioner": self.partitioner,
            "backend": self.backend,
            "ingest_kernel": self.ingest_kernel,
            "pipeline_depth": self.pipeline_depth,
            "fault_profile": self.fault_profile,
        }
        # the shards and streaming_dispatch axes postdate the store's
        # first trajectories; omitting them at their defaults keeps
        # every legacy cell's config hash (and therefore its cross-PR
        # history) intact
        if self.shards:
            out["shards"] = self.shards
        if self.streaming_dispatch:
            out["streaming_dispatch"] = True
        return out

    @property
    def config_hash(self) -> str:
        return config_hash(self.params())

    def label(self) -> str:
        base = (
            f"{self.workload}/{self.partitioner}/{self.backend}/"
            f"{self.ingest_kernel}/d{self.pipeline_depth}/{self.fault_profile}"
        )
        if self.shards:
            base = f"{base}/s{self.shards}"
        if self.streaming_dispatch:
            base = f"{base}/stream"
        return base


@dataclass(frozen=True)
class ExperimentGrid:
    """A declared grid plus the shared run-scale knobs."""

    name: str
    workloads: tuple[str, ...]
    partitioners: tuple[str, ...]
    backends: tuple[str, ...] = ("serial",)
    ingest_kernels: tuple[str, ...] = ("default",)
    pipeline_depths: tuple[int, ...] = (1,)
    fault_profiles: tuple[str, ...] = ("none",)
    #: 0 = single engine; N >= 1 adds a sharded-topology cell at N
    shard_counts: tuple[int, ...] = (0,)
    #: streaming-dispatch variants to run (False = eager only)
    streaming_dispatch: tuple[bool, ...] = (False,)
    #: offered rate / batches / key universe for every cell run
    rate: float = 2_000.0
    num_batches: int = 4
    num_keys: int = 1_000
    seed: int = 11

    def cells(self) -> list[MatrixCell]:
        """The coherent cross-product (fault injection needs the
        parallel backend's retry machinery, so faulted serial cells are
        pruned rather than recorded as trivially identical runs;
        sharded cells stay on the serial depth-1 clean path — the
        topology's own axes, not the executor's, are what they track;
        streaming dispatch only truly overlaps on the parallel backend
        and is orthogonal to sharding, so streamed cells are parallel,
        prompt-partitioned and unsharded)."""
        out = []
        for combo in product(
            self.workloads,
            self.partitioners,
            self.backends,
            self.ingest_kernels,
            self.pipeline_depths,
            self.fault_profiles,
            self.shard_counts,
            self.streaming_dispatch,
        ):
            cell = MatrixCell(*combo)
            if cell.fault_profile != "none" and cell.backend != "parallel":
                continue
            if cell.shards and (
                cell.backend != "serial"
                or cell.pipeline_depth != 1
                or cell.fault_profile != "none"
                or cell.streaming_dispatch
            ):
                continue
            if cell.streaming_dispatch and (
                cell.backend != "parallel"
                or cell.partitioner != "prompt"
                or cell.fault_profile != "none"
            ):
                continue
            out.append(cell)
        return out

    def __len__(self) -> int:
        return len(self.cells())


#: single-cell smoke grid (CLI tests, quick local sanity)
TINY_GRID = ExperimentGrid(
    name="tiny",
    workloads=("synd-z1.4",),
    partitioners=("hash",),
    rate=800.0,
    num_batches=2,
    num_keys=200,
)

#: the CI grid: small enough to fill from scratch in minutes
QUICK_GRID = ExperimentGrid(
    name="quick",
    workloads=("synd-z1.4", "tweets"),
    partitioners=("hash", "prompt"),
    backends=("serial", "parallel"),
    pipeline_depths=(1, 2),
    shard_counts=(0, 2),
    streaming_dispatch=(False, True),
    rate=2_000.0,
    num_batches=4,
    num_keys=1_000,
)

#: the full matrix: every axis exercised, including parallel + faults
FULL_GRID = ExperimentGrid(
    name="full",
    workloads=("synd-z0.8", "synd-z1.4", "tweets", "churn"),
    partitioners=("hash", "pk2", "prompt"),
    backends=("serial", "parallel"),
    pipeline_depths=(1, 2),
    fault_profiles=("none", "map-crash"),
    shard_counts=(0, 2, 4),
    streaming_dispatch=(False, True),
    rate=3_000.0,
    num_batches=5,
    num_keys=2_000,
)

GRIDS: dict[str, ExperimentGrid] = {
    "tiny": TINY_GRID,
    "quick": QUICK_GRID,
    "full": FULL_GRID,
}


# ----------------------------------------------------------------------
def run_cell(
    cell: MatrixCell, grid: ExperimentGrid
) -> tuple[dict[str, float], dict[str, Any]]:
    """Execute one cell; returns ``(metrics, obs_snapshot)``.

    Observability is always on for matrix runs: the per-run metrics
    registry snapshot is what lets ``repro bench regress`` *explain* a
    flagged latency cell (retry spike? resurrection? stall?) instead of
    merely pointing at it.
    """
    if cell.shards:
        return _run_sharded_cell(cell, grid)
    injector = FAULT_PROFILES[cell.fault_profile]()
    config = EngineConfig(
        batch_interval=0.5,
        num_blocks=4,
        num_reducers=4,
        executor=cell.backend,
        executor_workers=2 if cell.backend == "parallel" else None,
        pipeline_depth=cell.pipeline_depth,
        ingest_kernel=None if cell.ingest_kernel == "default" else cell.ingest_kernel,
        streaming_dispatch=cell.streaming_dispatch,
        observability=ObservabilityConfig(enabled=True),
    )
    source_factory = lambda rate: MATRIX_WORKLOADS[cell.workload](  # noqa: E731
        rate, grid.num_keys, grid.seed
    )
    started = perf_counter()
    result = run_at_rate(
        make_partitioner(cell.partitioner),
        wordcount_query(window_length=2.0),
        config,
        source_factory,
        grid.rate,
        grid.num_batches,
        task_fault_injector=injector,
    )
    wall = perf_counter() - started
    stats = result.stats
    metrics = {
        "wall_seconds": wall,
        "throughput_tuples_per_sec": stats.throughput(),
        "latency_mean_seconds": stats.mean_latency(),
        "latency_p95_seconds": stats.p95_latency(),
        "load_mean": stats.mean_load(),
        "queue_delay_max_seconds": stats.max_queue_delay(),
        "total_tuples": float(stats.total_tuples),
        "stable": 1.0 if result.stable else 0.0,
        "task_retries": float(result.executor_task_retries),
        "executor_fallbacks": float(result.executor_fallbacks),
    }
    obs = result.observability.metrics.as_dict() if result.observability else {}
    return metrics, obs


def _run_sharded_cell(
    cell: MatrixCell, grid: ExperimentGrid
) -> tuple[dict[str, float], dict[str, Any]]:
    """A sharded-topology cell: the cell workload becomes a 2-tenant
    union (seed-offset copies, each at half the offered rate) fanned
    over ``cell.shards`` engines.  Metric names match the single-engine
    path so shard trajectories render in the same report columns;
    per-shard values fold the way the semantics demand (throughput and
    retries sum, latency and queue delay take the worst shard)."""
    from ..engine.sharding import ShardedEngine
    from ..workloads.tenants import MultiTenantSource, TenantStream

    make = MATRIX_WORKLOADS[cell.workload]
    union = MultiTenantSource(
        [
            TenantStream(
                f"tenant-{i}",
                make(grid.rate / 2, grid.num_keys, grid.seed + i),
            )
            for i in range(2)
        ]
    )
    config = EngineConfig(
        batch_interval=0.5,
        num_blocks=4,
        num_reducers=4,
        ingest_kernel=None if cell.ingest_kernel == "default" else cell.ingest_kernel,
        streaming_dispatch=cell.streaming_dispatch,
        observability=ObservabilityConfig(enabled=True),
    )
    engine = ShardedEngine(
        cell.partitioner,
        wordcount_query(window_length=2.0),
        config,
        num_shards=cell.shards,
    )
    started = perf_counter()
    result = engine.run(union, num_batches=grid.num_batches)
    wall = perf_counter() - started
    shard_stats = [r.stats for r in result.shard_results]
    metrics = {
        "wall_seconds": wall,
        "throughput_tuples_per_sec": result.throughput(),
        "latency_mean_seconds": max(s.mean_latency() for s in shard_stats),
        "latency_p95_seconds": max(s.p95_latency() for s in shard_stats),
        "load_mean": result.mean_load(),
        "queue_delay_max_seconds": max(
            s.max_queue_delay() for s in shard_stats
        ),
        "total_tuples": float(result.total_tuples()),
        "stable": 1.0 if result.stable else 0.0,
        "task_retries": float(
            sum(r.executor_task_retries for r in result.shard_results)
        ),
        "executor_fallbacks": float(
            sum(r.executor_fallbacks for r in result.shard_results)
        ),
    }
    obs = result.observability.metrics.as_dict() if result.observability else {}
    return metrics, obs


# ----------------------------------------------------------------------
@dataclass
class FillReport:
    """What one resumable ``fill`` pass did."""

    grid: str
    git_sha: str
    env_hash: str
    total: int
    executed: list[str] = field(default_factory=list)

    @property
    def skipped(self) -> int:
        return self.total - len(self.executed)


def fill(
    store: ResultsStore,
    grid: ExperimentGrid,
    *,
    force: bool = False,
    git_sha: str | None = None,
    env: Mapping[str, Any] | None = None,
    runner: Callable[[MatrixCell, ExperimentGrid], tuple[dict, dict]] | None = None,
    progress: Callable[[MatrixCell], None] | None = None,
) -> FillReport:
    """Run the grid's missing/invalidated cells and record them.

    A cell is *complete* when the store already holds its config hash
    for the current ``(git SHA, environment)`` pair — so the second
    consecutive ``fill`` executes nothing, while a new commit or a
    different machine refills the grid, growing each trajectory.
    ``force`` re-runs everything regardless (fresh rows are appended,
    never overwritten: history is immutable).
    """
    fingerprint = dict(env) if env is not None else environment_fingerprint()
    sha = git_sha or current_git_sha()
    ehash = environment_hash(fingerprint)
    done = store.completed_hashes(git_sha=sha, env_hash=ehash)
    execute = runner or run_cell
    report = FillReport(grid=grid.name, git_sha=sha, env_hash=ehash, total=len(grid))
    for cell in grid.cells():
        if not force and cell.config_hash in done:
            continue
        if progress is not None:
            progress(cell)
        metrics, obs = execute(cell, grid)
        store.record(
            CellResult(
                params=cell.params(),
                metrics=metrics,
                obs=obs,
                git_sha=sha,
                env=fingerprint,
                source="matrix",
                label=cell.label(),
            )
        )
        report.executed.append(cell.label())
        log.info("filled cell %s (%s)", cell.label(), cell.config_hash)
    return report


# ----------------------------------------------------------------------
def trajectory_rows(
    store: ResultsStore,
    *,
    metrics: tuple[str, ...] | None = None,
    env_hash: str | None = None,
) -> list[dict[str, Any]]:
    """One report row per (cell, metric) trajectory in the store."""
    rows = []
    for series in store.trajectories(env_hash=env_hash):
        if metrics and series["metric"] not in metrics:
            continue
        values = series["values"]
        first, last = values[0], values[-1]
        delta = ((last - first) / abs(first) * 100.0) if first else 0.0
        rows.append(
            {
                "Cell": series["label"],
                "Metric": series["metric"],
                "Runs": len(values),
                "First": first,
                "Last": last,
                "DeltaPct": delta,
                "Trend": sparkline(values),
                "ConfigHash": series["config_hash"],
            }
        )
    return rows


def render_matrix_report(
    store: ResultsStore,
    *,
    metrics: tuple[str, ...] | None = None,
    env_hash: str | None = None,
    markdown: bool = False,
    title: str = "Experiment matrix: metric trajectories",
) -> str:
    """The cross-PR trajectory table (text or markdown)."""
    rows = trajectory_rows(store, metrics=metrics, env_hash=env_hash)
    columns = ["Cell", "Metric", "Runs", "First", "Last", "DeltaPct", "Trend"]
    if not markdown:
        return format_table(rows, columns=columns, title=title)
    lines = [f"### {title}", ""]
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "|".join(" --- " for _ in columns) + "|")
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                value = f"{value:.3f}"
            cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    if not rows:
        lines.append("| _empty store_ |" + " |" * (len(columns) - 1))
    return "\n".join(lines)
