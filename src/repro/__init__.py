"""repro — reproduction of *Prompt: Dynamic Data-Partitioning for
Distributed Micro-batch Stream Processing Systems* (SIGMOD 2020).

Public API layout:

- :mod:`repro.core` — the paper's contribution: frequency-aware
  buffering (Alg. 1), B-BPFI batch partitioning (Alg. 2), B-BPVC reduce
  allocation (Alg. 3), latency-aware elasticity (Alg. 4), and the
  BSI/BCI/KSR/MPI cost model.
- :mod:`repro.partitioners` — Prompt plus every baseline technique
  (time-based, shuffle, hashing, PK2/PK5, cAM).
- :mod:`repro.engine` — the simulated micro-batch engine substrate
  (receiver, scheduler, tasks, windows, state, faults, back-pressure)
  and the sharded multi-engine topology
  (:mod:`repro.engine.sharding`: router, driver, merge, shard faults).
- :mod:`repro.queries` — the Section 7.1 benchmark queries.
- :mod:`repro.workloads` — dataset generators, arrival processes, and
  the multi-tenant stream wrappers.
- :mod:`repro.bench` — the experiment harness regenerating every table
  and figure of the evaluation.
- :mod:`repro.obs` — optional zero-dependency observability: span
  tracing, a metrics registry, and Chrome-trace/JSONL/Prometheus
  exporters (enable via ``EngineConfig.observability``).

Quickstart::

    import repro
    from repro.queries import wordcount_query
    from repro.workloads import tweets_source

    result = repro.run(
        tweets_source(rate=5_000),
        wordcount_query(window_length=10.0),
        partitioner="prompt",
        num_batches=12,
    )
    print(result.stats.throughput(), result.stats.mean_latency())

Scale out by handing the same call a run shape::

    result = repro.run(
        union,  # a MultiTenantSource over per-tenant streams
        wordcount_query(window_length=10.0),
        topology=repro.Sharded(shards=4, router="consistent-hash"),
    )

The explicit forms — :class:`RunSpec`, or building a partitioner, a
query, and an :class:`EngineConfig` around a :class:`MicroBatchEngine`
/ :class:`ShardedEngine` — remain available for anything the one-shot
entry cannot express (failure injection, partitioner reuse, sweeps).

The names exported here — ``__all__`` below — are the frozen v1 public
surface; ``docs/api.md`` documents each one and a doc-sync test keeps
the two lists identical.  Symbols deeper in subpackages remain
importable but carry no stability promise.  v0 call forms
(``repro.run(..., executor="parallel")`` with loose engine kwargs) keep
working behind a one-shot deprecation warning.
"""

from .api import RunSpec, Sharded, SingleEngine, Topology, run
from .core import (
    AccumulatorConfig,
    AutoScaler,
    BatchInfo,
    CountTree,
    ElasticityConfig,
    MicroBatchAccumulator,
    MPIWeights,
    PartitionedBatch,
    PromptBatchPartitioner,
    PromptConfig,
    ReduceBucketAllocator,
    StreamTuple,
    evaluate_partition,
)
from .engine import (
    EngineConfig,
    ExecutorKind,
    MicroBatchEngine,
    Rebalance,
    RunResult,
    ShardRouter,
    ShardedEngine,
    ShardedRunResult,
    make_router,
)
from .obs import ObservabilityConfig, RunObservability
from .partitioners import make_partitioner
from .queries import Query, WindowSpec
from .workloads import MultiTenantSource, TenantStream

__version__ = "1.1.0"

__all__ = [
    "AccumulatorConfig",
    "AutoScaler",
    "BatchInfo",
    "CountTree",
    "ElasticityConfig",
    "EngineConfig",
    "ExecutorKind",
    "MPIWeights",
    "MicroBatchAccumulator",
    "MicroBatchEngine",
    "MultiTenantSource",
    "ObservabilityConfig",
    "PartitionedBatch",
    "PromptBatchPartitioner",
    "PromptConfig",
    "Query",
    "Rebalance",
    "ReduceBucketAllocator",
    "RunObservability",
    "RunResult",
    "RunSpec",
    "ShardRouter",
    "Sharded",
    "ShardedEngine",
    "ShardedRunResult",
    "SingleEngine",
    "StreamTuple",
    "TenantStream",
    "Topology",
    "WindowSpec",
    "__version__",
    "evaluate_partition",
    "make_partitioner",
    "make_router",
    "run",
]
