"""Metrics registry: instrument semantics and the null path."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


def test_counter_get_or_create_and_inc():
    reg = MetricsRegistry()
    c = reg.counter("prompt_batches_total", "batches processed")
    c.inc()
    c.inc(2)
    assert reg.counter("prompt_batches_total") is c
    assert c.value == 3.0
    with pytest.raises(ValueError):
        c.inc(-1)


def test_labels_give_distinct_instruments():
    reg = MetricsRegistry()
    a = reg.gauge("prompt_partition_bsi", labels={"technique": "prompt"})
    b = reg.gauge("prompt_partition_bsi", labels={"technique": "pk2"})
    assert a is not b
    a.set(0.9)
    b.set(0.2)
    # label order must not matter for identity
    assert reg.gauge("prompt_partition_bsi", labels={"technique": "prompt"}).value == 0.9
    assert len(reg) == 2


def test_kind_conflict_rejected():
    reg = MetricsRegistry()
    reg.counter("prompt_tuples_total")
    with pytest.raises(ValueError, match="already registered"):
        reg.gauge("prompt_tuples_total")


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("prompt_batch_load")
    g.set(1.5)
    g.inc(0.5)
    g.dec(1.0)
    assert g.value == pytest.approx(1.0)


def test_histogram_buckets_and_cumulative_counts():
    h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    assert h.count == 5
    assert h.sum == pytest.approx(56.05)
    # per-bucket: <=0.1 -> 1, <=1.0 -> 2, <=10.0 -> 1, overflow -> uncounted
    assert h.bucket_counts == [1, 2, 1]
    assert h.cumulative_counts() == [1, 3, 4]


def test_histogram_rejects_nan_and_empty_buckets():
    h = Histogram("lat", buckets=(1.0,))
    with pytest.raises(ValueError, match="NaN"):
        h.observe(math.nan)
    with pytest.raises(ValueError):
        Histogram("empty", buckets=())


def test_default_buckets_are_sorted():
    assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS


def test_collect_is_sorted_and_as_dict_roundtrips():
    reg = MetricsRegistry()
    reg.counter("z_total").inc()
    reg.gauge("a_gauge").set(2.0)
    reg.histogram("m_seconds", buckets=(1.0,)).observe(0.5)
    names = [m.name for m in reg.collect()]
    assert names == sorted(names)
    snap = reg.as_dict()
    assert snap["z_total"] == 1.0
    assert snap["a_gauge"] == 2.0
    assert snap["m_seconds"]["count"] == 1


def test_null_registry_absorbs_everything():
    reg = NullMetricsRegistry()
    assert not reg.enabled
    reg.counter("x_total").inc(5)
    reg.gauge("y").set(1.0)
    reg.histogram("z_seconds").observe(0.1)
    assert len(reg) == 0
    assert reg.as_dict() == {}
    assert not NULL_METRICS.enabled
