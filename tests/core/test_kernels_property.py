"""Property suite: the numpy ingest/placement kernels vs the Python oracle.

The kernels in :mod:`repro.core.kernels` promise *bit-compatibility*
with the per-tuple reference path — not statistical closeness.  This
suite hammers that promise with >1000 seeded random instances:

- Zipf-skewed key populations across cardinalities, batch sizes and
  block counts, including weighted tuples (the non-unit placement
  paths: cumulative-weight dicing, ``chain_weights``, weighted shave);
- multi-batch replays with key *churn* (the key universe drifts
  between intervals), so the accumulator's adaptive ``N_est``/``K_avg``
  history — which feeds Algorithm 1's trigger steps — must evolve
  identically along the whole trajectory;
- duplicate timestamps and boundary arrivals, where only exact float
  predicates (``a - b >= c``, never ``a >= b + c``) keep the paths in
  agreement.

Every instance compares the full decision surface: quasi-sort order,
tracked counts, tree-update totals, per-block fragment contents *and
insertion order*, split-key reference tables (including dict order),
and chain object identity (kernels must not copy tuples).

The per-key simulator variants (dense reference, event-jumping,
vectorized scan) are also cross-checked directly.  The no-numpy
fallback paths live in ``test_kernels_fallback.py``, which runs with
or without numpy installed.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core import kernels
from repro.core.batch import BatchInfo
from repro.core.tuples import StreamTuple
from repro.partitioners.prompt import PromptPartitioner

np = pytest.importorskip("numpy")

#: scenarios x batches = instances; the accept gate is >= 1000
NUM_SCENARIOS = 250
BATCHES_PER_SCENARIO = 4


def _gen_batch(rng, index, n, num_keys, key_base, weighted):
    """One interval of Zipf-ish tuples with optional weights.

    ``key_base`` shifts the key universe (churn): later batches draw
    from a partially disjoint population, so cross-batch adaptation
    sees genuinely new keys, not a reshuffle.
    """
    t_start = float(index)
    t_end = t_start + 1.0
    ts = sorted(rng.uniform(t_start, t_end) for _ in range(n))
    if n >= 2 and rng.random() < 0.3:
        # duplicate timestamps: tie-handling must match exactly
        ts[n // 2] = ts[n // 2 - 1]
    out = []
    for i in range(n):
        rank = int(rng.paretovariate(1.1)) % num_keys
        weight = rng.randint(1, 5) if weighted else 1
        out.append(
            StreamTuple(ts=ts[i], key=f"k{key_base + rank}", weight=weight)
        )
    return out, BatchInfo(index=index, t_start=t_start, t_end=t_end)


def _snapshot(partitioner, batch):
    blocks = [
        (
            b.index,
            b.size,
            b.cardinality,
            [
                (key, [(t.ts, t.key, t.value, t.weight) for t in b.fragment(key)])
                for key in b.keys
            ],
        )
        for b in batch.blocks
    ]
    accumulated = partitioner.last_batch
    return pickle.dumps(
        (
            blocks,
            list(batch.split_keys.items()),
            [(g.key, g.tracked_count, len(g.tuples)) for g in accumulated.key_groups],
            (accumulated.tree_updates, accumulated.total_weight),
        )
    )


@pytest.mark.parametrize("chunk", range(5))
def test_kernel_matches_oracle_property(chunk):
    """>=1000 random multi-batch instances, byte-identical outputs."""
    per_chunk = NUM_SCENARIOS // 5
    for scenario in range(chunk * per_chunk, (chunk + 1) * per_chunk):
        rng = random.Random(9000 + scenario)
        weighted = scenario % 4 == 3
        num_keys = 3 + (scenario * 29) % 120
        num_blocks = 2 + scenario % 7
        oracle = PromptPartitioner(ingest_kernel="python")
        kernel = PromptPartitioner(ingest_kernel="numpy")
        key_base = 0
        for index in range(BATCHES_PER_SCENARIO):
            n = 50 + (scenario * 137 + index * 311) % 700
            tuples, info = _gen_batch(rng, index, n, num_keys, key_base, weighted)
            key_base += rng.choice((0, 0, num_keys // 3, num_keys))  # churn
            oracle_batch = oracle.partition(tuples, num_blocks, info)
            kernel_batch = kernel.partition(tuples, num_blocks, info)
            assert _snapshot(oracle, oracle_batch) == _snapshot(
                kernel, kernel_batch
            ), f"scenario={scenario} batch={index}"
            # chains must hold the *same* tuple objects, not copies
            for og, kg in zip(
                oracle.last_batch.key_groups, kernel.last_batch.key_groups
            ):
                assert all(a is b for a, b in zip(og.tuples, kg.tuples))


def test_kernel_matches_oracle_exact_updates():
    """The prompt-exact ablation (no budget) stays bit-identical too."""
    for scenario in range(25):
        rng = random.Random(4400 + scenario)
        oracle = PromptPartitioner(ingest_kernel="python", exact_updates=True)
        kernel = PromptPartitioner(ingest_kernel="numpy", exact_updates=True)
        for index in range(3):
            tuples, info = _gen_batch(
                rng, index, 300, 40, 0, weighted=scenario % 3 == 2
            )
            oracle_batch = oracle.partition(tuples, 4, info)
            kernel_batch = kernel.partition(tuples, 4, info)
            assert _snapshot(oracle, oracle_batch) == _snapshot(kernel, kernel_batch)


def test_empty_and_single_tuple_batches_match():
    oracle = PromptPartitioner(ingest_kernel="python")
    kernel = PromptPartitioner(ingest_kernel="numpy")
    solo = [StreamTuple(ts=0.5, key="only")]
    for tuples in ([], solo):
        info = BatchInfo(index=0, t_start=0.0, t_end=1.0)
        oracle_batch = oracle.partition(tuples, 3, info)
        kernel_batch = kernel.partition(tuples, 3, info)
        assert _snapshot(oracle, oracle_batch) == _snapshot(kernel, kernel_batch)
        oracle.reset()
        kernel.reset()


def test_simulator_variants_agree():
    """Dense reference vs event-jumping vs vectorized-scan recurrences.

    Random per-key chains (including lengths past the vectorization
    threshold) with random global-index interleavings, budgets and
    trigger seeds: all three implementations must return the identical
    (tracked count, tree updates) pair.
    """
    rng = random.Random(77)
    lengths = [1, 2, 3, 7, 50, 400] + [kernels._LONG_CHAIN_THRESHOLD + 13]
    cases = 0
    for m in lengths:
        for trial in range(40 if m < 1000 else 6):
            t_end = rng.uniform(0.5, 2.0)
            ts = sorted(rng.uniform(0.0, t_end) for _ in range(m))
            if m >= 3 and trial % 5 == 0:
                ts[1] = ts[0]  # duplicate arrival times
            # strictly increasing global indexes simulate interleaving
            G = []
            g = 0
            for _ in range(m):
                g += rng.randint(1, 4)
                G.append(g - 1)
            T = np.asarray(ts, dtype=np.float64)
            G_arr = np.asarray(G, dtype=np.int64)
            chain = [StreamTuple(ts=t, key="k") for t in ts]
            budget = rng.randint(1, 40)
            est = rng.randint(1, 5000)
            f0 = rng.randint(1, 10)
            dense = kernels._simulate_key_dense(T, G_arr, budget, est, f0, t_end)
            if m == 1:
                jump = (1, 0)
                jump_arr = (1, 0)
            else:
                jump = kernels._simulate_key_jump(
                    chain, G_arr, 0, m, budget, est, f0, t_end
                )
                jump_arr = kernels._simulate_key_jump_arr(
                    T, G_arr, 0, m, budget, est, f0, t_end
                )
            assert dense == jump == jump_arr, (m, trial, budget, est, f0)
            cases += 1
    assert cases > 200
