"""Configuration validation and paper defaults."""

from __future__ import annotations

import pytest

from repro.core.config import (
    AccumulatorConfig,
    EarlyReleaseConfig,
    ElasticityConfig,
    MPIWeights,
    PartitionerConfig,
    PromptConfig,
)


def test_accumulator_defaults_and_initial_step():
    cfg = AccumulatorConfig(budget=8, expected_tuples=8000, expected_keys=100)
    assert cfg.initial_frequency_step == 8000 // (100 * 8)


def test_initial_step_is_at_least_one():
    cfg = AccumulatorConfig(budget=10, expected_tuples=5, expected_keys=100)
    assert cfg.initial_frequency_step == 1


@pytest.mark.parametrize(
    "kwargs",
    [
        {"budget": 0},
        {"expected_tuples": 0},
        {"expected_keys": 0},
        {"history_window": 0},
    ],
)
def test_accumulator_validation(kwargs):
    with pytest.raises(ValueError):
        AccumulatorConfig(**kwargs)


def test_mpi_weights_default_to_equal_thirds():
    w = MPIWeights()
    assert w.p1 == pytest.approx(1 / 3)
    assert w.p1 + w.p2 + w.p3 == pytest.approx(1.0)


def test_partitioner_config_validation():
    with pytest.raises(ValueError):
        PartitionerConfig(split_cutoff_scale=0.0)


def test_early_release_paper_default():
    assert EarlyReleaseConfig().slack_fraction == pytest.approx(0.05)


def test_elasticity_paper_defaults():
    cfg = ElasticityConfig()
    assert cfg.threshold == pytest.approx(0.90)
    assert cfg.step == pytest.approx(0.10)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"threshold": 0.0},
        {"threshold": 2.5},
        {"step": 0.0},
        {"step": 0.95},
        {"window": 0},
        {"grace": -1},
        {"min_map_tasks": 0},
        {"min_map_tasks": 8, "max_map_tasks": 4},
        {"min_reduce_tasks": 9, "max_reduce_tasks": 3},
    ],
)
def test_elasticity_validation(kwargs):
    with pytest.raises(ValueError):
        ElasticityConfig(**kwargs)


def test_prompt_config_bundles_defaults():
    cfg = PromptConfig()
    assert cfg.accumulator.budget == 8
    assert cfg.early_release.slack_fraction == pytest.approx(0.05)
    assert cfg.elasticity.threshold == pytest.approx(0.9)
    assert cfg.partitioner.weights.p2 == pytest.approx(1 / 3)
