"""Determinism: every technique reproduces its decisions exactly."""

from __future__ import annotations

import pytest

from repro.core.batch import BatchInfo
from repro.partitioners import PARTITIONER_NAMES, WorkerLoadFeedback, make_partitioner

from ..conftest import make_tuples, zipfish_freqs

INFO = BatchInfo(0, 0.0, 1.0)


def _layout(batch):
    return [
        sorted((repr(k), len(block.fragment(k))) for k in block.keys)
        for block in batch.blocks
    ]


@pytest.mark.parametrize("name", PARTITIONER_NAMES)
def test_fresh_instances_agree(name):
    """Two independently-built partitioners produce identical layouts."""
    tuples = make_tuples(zipfish_freqs(40, 600), shuffle_seed=4)
    a = make_partitioner(name).partition(tuples, 6, INFO)
    b = make_partitioner(name).partition(tuples, 6, INFO)
    assert _layout(a) == _layout(b)
    assert a.split_keys == b.split_keys


@pytest.mark.parametrize("name", PARTITIONER_NAMES)
def test_reset_restores_initial_behaviour(name):
    """After reset(), a reused instance matches a fresh one."""
    tuples = make_tuples(zipfish_freqs(30, 400), shuffle_seed=8)
    part = make_partitioner(name)
    part.partition(tuples, 4, INFO)  # accumulate any cross-batch state
    part.reset()
    reused = part.partition(tuples, 4, INFO)
    fresh = make_partitioner(name).partition(tuples, 4, INFO)
    assert _layout(reused) == _layout(fresh)


@pytest.mark.parametrize("name", ["d-choices", "w-choices", "fang"])
def test_feedback_consumers_agree_under_identical_feedback(name):
    """Same batches + same feedback history => byte-identical layouts.

    The adaptive techniques fold delivered load observations into later
    decisions, so determinism must hold over the *(batch, feedback)*
    sequence, not just over single batches."""
    tuples = make_tuples(zipfish_freqs(40, 600), shuffle_seed=4)
    layouts = []
    for _ in range(2):
        part = make_partitioner(name)
        part.reset()
        run = []
        for k in range(3):
            info = BatchInfo(k, float(k), float(k + 1))
            batch = part.partition(tuples, 6, info)
            run.append((_layout(batch), sorted(map(repr, batch.split_keys))))
            part.observe_load(
                WorkerLoadFeedback(
                    batch_index=k,
                    block_sizes=tuple(b.size for b in batch.blocks),
                    block_cardinalities=tuple(b.cardinality for b in batch.blocks),
                    block_loads=tuple(float(b.size) for b in batch.blocks),
                    bucket_weights=(),
                    bucket_loads=(),
                )
            )
        layouts.append(run)
    assert layouts[0] == layouts[1]


@pytest.mark.parametrize("name", ["hash", "pk2", "pk5", "cam"])
def test_layout_independent_of_unrelated_history(name):
    """Partitioning batch B is unaffected by having seen batch A first
    (per-batch statelessness of these techniques).  Prompt and pkh are
    excluded: they *intentionally* adapt across batches (Algorithm 1's
    N_est/K_avg estimation and the heavy-hitter sketch, respectively)."""
    tuples_a = make_tuples({f"x{i}": 3 for i in range(30)}, shuffle_seed=1)
    tuples_b = make_tuples(zipfish_freqs(25, 300), shuffle_seed=2)
    cold = make_partitioner(name).partition(tuples_b, 4, INFO)
    warm_part = make_partitioner(name)
    warm_part.partition(tuples_a, 4, INFO)
    warm = warm_part.partition(tuples_b, 4, BatchInfo(1, 1.0, 2.0))
    assert _layout(cold) == _layout(warm)
