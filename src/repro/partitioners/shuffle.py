"""Shuffle (round-robin) partitioning (Section 2.2.2).

Tuples are dealt to blocks in arrival order, so block sizes are equal
(±1 tuple) regardless of the data rate — but a key's tuples scatter over
*all* blocks, maximizing the per-key aggregation overhead at the Reduce
stage (every block contributes a fragment of every frequent key).
"""

from __future__ import annotations

from typing import Sequence

from ..core.batch import BatchInfo, DataBlock
from ..core.tuples import StreamTuple
from .base import StreamingPartitioner

__all__ = ["ShufflePartitioner"]


class ShufflePartitioner(StreamingPartitioner):
    """Round-robin assignment by arrival order."""

    name = "shuffle"

    def assign(
        self,
        t: StreamTuple,
        seq: int,
        blocks: Sequence[DataBlock],
        info: BatchInfo,
    ) -> int:
        return seq % len(blocks)
