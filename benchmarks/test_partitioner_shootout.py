"""Partitioner shoot-out: all techniques head-to-head on one grid.

Quality grid (BSI/BCI/KSR/MPI, post-warm-up means, lag-2 load
feedback for the techniques that consume it) plus a runtime grid
(latency distribution + throughput at a fixed offered rate) across the
Zipf sweep, the taxi/tweets replicas, and the churn / hot-flip
scenario axes.

Only one claim is gated: on high-skew rows Prompt wins the joint
balance+replication score and is Pareto-undominated on (BSI, KSR).
Rivals are allowed to win individual metrics — D-/W-Choices routinely
post the lowest raw BSI — and those numbers are reported as-is.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.bench.shootout import (
    SHOOTOUT_EXPONENTS,
    SHOOTOUT_TECHNIQUES,
    joint_imbalance_score,
    partitioner_shootout,
    high_skew_verdicts,
)


def test_partitioner_shootout(benchmark, record_experiment):
    payload = benchmark.pedantic(
        lambda: partitioner_shootout(rate=6_000.0, num_keys=3_000, cost_scale=2.0),
        rounds=1,
        iterations=1,
    )
    quality = payload["quality"]
    runtime = payload["runtime"]
    for row in quality:
        row["JointScore"] = joint_imbalance_score(row)
    verdicts = high_skew_verdicts(quality)
    payload["verdicts"] = verdicts
    record_experiment(
        "BENCH_partitioner_shootout",
        format_table(
            quality,
            columns=["Scenario", "Skew", "Technique", "BSI", "BCI", "KSR", "MPI", "JointScore"],
            title="Partitioner shoot-out: partition quality (post-warm-up means)",
        )
        + "\n\n"
        + format_table(
            runtime,
            columns=["Scenario", "Technique", "LatencyMean", "LatencyP95", "Throughput", "Stable"],
            title="Partitioner shoot-out: runtime at fixed offered rate",
        ),
        payload,
        store=dict(backend="serial"),
    )

    # Grid coverage: every technique on every scenario, >= 3 skew levels.
    assert set(payload["techniques"]) == set(SHOOTOUT_TECHNIQUES)
    skews = {r["Skew"] for r in quality if r["Skew"] is not None}
    assert len(skews) >= 3
    assert len(SHOOTOUT_EXPONENTS) >= 3
    for rows in (quality, runtime):
        cells = {(r["Scenario"], r["Technique"]) for r in rows}
        assert len(cells) == len(payload["scenarios"]) * len(SHOOTOUT_TECHNIQUES)

    # Every run at this rate stays stable — the grids compare quality
    # and latency, not survival.
    assert all(r["Stable"] for r in runtime)

    # The gated claim: joint win + Pareto-undominated on high skew.
    assert verdicts, "expected at least one high-skew scenario"
    for verdict in verdicts:
        assert verdict["JointWin"], verdict
        assert not verdict["DominatedBy"], verdict
