"""Pluggable execution backends for the Map -> shuffle -> Reduce pipeline.

The engine used to run every task inline; this module makes the task
dispatch a strategy so the load-balanced blocks that Algorithm 2
equalizes are actually *processed concurrently* — the operating regime
the paper's Eqn. 1 (makespan = longest Map + longest Reduce task)
assumes.  Two backends ship:

- :class:`SerialExecutor` — the extracted in-process reference loop.
- :class:`ParallelExecutor` — a ``ProcessPoolExecutor`` running one Map
  task per data block and one Reduce task per bucket concurrently.

**Determinism contract.**  Both backends must produce *bit-identical*
:class:`~repro.engine.tasks.BatchExecution` payloads for the same batch
(the differential test suite enforces this):

- results merge in stable block/bucket-id order (futures are gathered
  in submission order, never completion order);
- every task carries a seed derived from
  ``(run_seed, batch_index, kind, task_id)`` via
  :func:`~repro.engine.tasks.derive_task_seed`, so any stochastic
  operator a query may introduce behaves identically under either
  backend;
- the shuffle runs on the driver from Map results ordered by block id,
  so per-bucket partial lists have one canonical order.

**Fallback.**  Pool *infrastructure* failures (a broken pool, an
unpicklable task component) degrade gracefully to in-process execution
for the affected batch — serial semantics are the reference, so the
answer is unchanged; the event is counted on ``fallbacks``/noted on
``last_fallback_reason``.  Application errors raised *by* a task
(query bugs, key-locality violations) propagate unchanged: masking
them behind a silent retry would hide real defects.

Only real wall-clock differs between backends: each task measures its
body with ``perf_counter`` and the per-batch totals feed
:mod:`repro.engine.stats`, which is how the speedup microbenchmark
(``BENCH_parallel_speedup.json``) tracks what parallelism buys.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import pickle
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Optional, Sequence

from ..core.batch import PartitionedBatch
from ..partitioners.base import Partitioner
from ..queries.base import Query
from .tasks import (
    BatchExecution,
    BucketInput,
    MapTaskResult,
    ReduceTaskResult,
    TaskCostModel,
    derive_task_seed,
    execute_batch_tasks,
    run_map_task,
    run_reduce_task,
    shuffle_map_results,
)
from .topology import Topology

__all__ = [
    "ExecutionBackend",
    "SerialExecutor",
    "ParallelExecutor",
    "EXECUTOR_NAMES",
    "make_executor",
]


class ExecutionBackend(abc.ABC):
    """Strategy interface: how one batch's tasks are dispatched."""

    #: registry identifier ("serial", "parallel")
    name: str = "base"

    def __init__(self, *, run_seed: int = 0) -> None:
        self.run_seed = run_seed
        #: batches that degraded to in-process execution
        self.fallbacks = 0
        self.last_fallback_reason: Optional[str] = None

    @abc.abstractmethod
    def run_batch(
        self,
        batch: PartitionedBatch,
        query: Query,
        partitioner: Partitioner,
        num_reducers: int,
        cost_model: TaskCostModel,
        topology: Topology | None = None,
    ) -> BatchExecution:
        """Execute one batch's Map -> shuffle -> Reduce computation."""

    def close(self) -> None:
        """Release any resources (worker pools); idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(ExecutionBackend):
    """In-process execution — the reference semantics of the engine."""

    name = "serial"

    def run_batch(
        self,
        batch: PartitionedBatch,
        query: Query,
        partitioner: Partitioner,
        num_reducers: int,
        cost_model: TaskCostModel,
        topology: Topology | None = None,
    ) -> BatchExecution:
        return execute_batch_tasks(
            batch,
            query,
            partitioner,
            num_reducers,
            cost_model,
            topology=topology,
            run_seed=self.run_seed,
        )


def _map_task_worker(payload: bytes) -> MapTaskResult:
    """Worker entry point for one Map task.

    Payloads arrive pre-pickled by the driver (see
    :meth:`ParallelExecutor.run_batch` for why) and are unpacked here.
    """
    block, query, allocate, num_reducers, split_keys, cost_model, task_seed = (
        pickle.loads(payload)
    )
    return run_map_task(
        block, query, allocate, num_reducers, split_keys, cost_model, task_seed
    )


def _reduce_task_worker(payload: bytes) -> ReduceTaskResult:
    """Worker entry point for one Reduce task (payload pre-pickled)."""
    bucket, aggregator, cost_model, task_seed = pickle.loads(payload)
    return run_reduce_task(bucket, aggregator, cost_model, task_seed)


def _is_infrastructure_error(exc: BaseException) -> bool:
    """Pool/serialization failures that warrant the serial fallback.

    Unpicklable payloads surface three ways depending on where pickle
    gives up: ``PicklingError`` (module-level lookup failure),
    ``AttributeError`` ("Can't pickle local object ..."), and
    ``TypeError`` ("cannot pickle '_thread.lock' object").  The latter
    two only count when they are pickle's complaint — a query's own
    TypeError/AttributeError must propagate.
    """
    if isinstance(exc, (BrokenProcessPool, pickle.PicklingError)):
        return True
    if isinstance(exc, (TypeError, AttributeError)) and "pickle" in str(exc).lower():
        return True
    return False


class ParallelExecutor(ExecutionBackend):
    """Process-pool execution: one Map task per block, one Reduce per bucket.

    The pool is created lazily on the first batch and reused for the
    whole run (fork start method where the platform offers it, so
    workers inherit the loaded modules instead of re-importing).  Task
    payloads carry only what the task needs — the data block or bucket,
    the query, a *stateless* allocation callable
    (:meth:`~repro.partitioners.base.Partitioner.reduce_allocation`),
    and the cost model — never the engine or partitioner state.
    """

    name = "parallel"

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        run_seed: int = 0,
        fallback_to_serial: bool = True,
        mp_context: multiprocessing.context.BaseContext | None = None,
    ) -> None:
        super().__init__(run_seed=run_seed)
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.fallback_to_serial = fallback_to_serial
        self._mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self._broken = False

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            ctx = self._mp_context
            if ctx is None:
                methods = multiprocessing.get_all_start_methods()
                ctx = multiprocessing.get_context(
                    "fork" if "fork" in methods else None
                )
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=ctx
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    # ------------------------------------------------------------------
    def _serial_fallback(
        self,
        reason: BaseException,
        batch: PartitionedBatch,
        query: Query,
        partitioner: Partitioner,
        num_reducers: int,
        cost_model: TaskCostModel,
        topology: Topology | None,
    ) -> BatchExecution:
        self.fallbacks += 1
        self.last_fallback_reason = f"{type(reason).__name__}: {reason}"
        return execute_batch_tasks(
            batch,
            query,
            partitioner,
            num_reducers,
            cost_model,
            topology=topology,
            run_seed=self.run_seed,
        )

    def run_batch(
        self,
        batch: PartitionedBatch,
        query: Query,
        partitioner: Partitioner,
        num_reducers: int,
        cost_model: TaskCostModel,
        topology: Topology | None = None,
    ) -> BatchExecution:
        if num_reducers < 1:
            raise ValueError(f"num_reducers must be >= 1, got {num_reducers}")
        if self._broken and self.fallback_to_serial:
            # The pool died earlier in this run; stay serial for the rest.
            return self._serial_fallback(
                RuntimeError("process pool previously broke"),
                batch, query, partitioner, num_reducers, cost_model, topology,
            )
        allocate = partitioner.reduce_allocation()
        split = set(batch.split_keys)
        batch_index = batch.info.index
        try:
            # Payloads are pickled *here*, in the driver, and shipped as
            # bytes.  Letting the pool's queue-feeder thread pickle them
            # instead would surface unpicklable payloads asynchronously
            # and leave the pool wedged (its shutdown can deadlock after
            # a feeder crash); pickling up front makes the failure
            # synchronous, classifiable, and pool-preserving.
            map_payloads = [
                pickle.dumps(
                    (
                        block,
                        query,
                        allocate,
                        num_reducers,
                        {k for k in split if k in block},
                        cost_model,
                        derive_task_seed(self.run_seed, batch_index, "map", block.index),
                    )
                )
                for block in batch.blocks
            ]
            pool = self._ensure_pool()
            map_futures: list[Future[MapTaskResult]] = [
                pool.submit(_map_task_worker, payload) for payload in map_payloads
            ]
            # Gather in submission (= block id) order: deterministic merge.
            map_results = [f.result() for f in map_futures]
            buckets = shuffle_map_results(map_results, num_reducers, topology)
            reduce_payloads = [
                pickle.dumps(
                    (
                        bucket,
                        query.aggregator,
                        cost_model,
                        derive_task_seed(
                            self.run_seed, batch_index, "reduce", bucket.bucket_index
                        ),
                    )
                )
                for bucket in buckets
            ]
            reduce_futures: list[Future[ReduceTaskResult]] = [
                pool.submit(_reduce_task_worker, payload)
                for payload in reduce_payloads
            ]
            reduce_results = [f.result() for f in reduce_futures]
        except BaseException as exc:
            if isinstance(exc, BrokenProcessPool):
                self._broken = True
                self.close()
            if self.fallback_to_serial and _is_infrastructure_error(exc):
                return self._serial_fallback(
                    exc, batch, query, partitioner, num_reducers, cost_model, topology
                )
            raise
        return BatchExecution(
            map_results=map_results, reduce_results=reduce_results, backend=self.name
        )


EXECUTOR_NAMES: tuple[str, ...] = ("serial", "parallel")


def make_executor(
    name: str,
    *,
    max_workers: int | None = None,
    run_seed: int = 0,
    fallback_to_serial: bool = True,
) -> ExecutionBackend:
    """Build an execution backend by registry name."""
    if name == "serial":
        return SerialExecutor(run_seed=run_seed)
    if name == "parallel":
        return ParallelExecutor(
            max_workers,
            run_seed=run_seed,
            fallback_to_serial=fallback_to_serial,
        )
    raise ValueError(
        f"unknown executor {name!r}; available: {', '.join(EXECUTOR_NAMES)}"
    )
