"""Extension: batch resizing (Das et al.) vs Prompt's elasticity.

The paper's Section 1 argues that resizing the batch interval restores
stability at the price of delayed results, while Prompt holds the
interval (and therefore latency) by adjusting parallelism.  This bench
runs the same fixed-cost-heavy overload through three configurations
and reports stability and latency side by side.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.core.config import ElasticityConfig
from repro.engine.cluster import ClusterConfig
from repro.engine.engine import EngineConfig, MicroBatchEngine
from repro.engine.tasks import TaskCostModel
from repro.extensions.batch_sizing import BatchSizingConfig
from repro.partitioners import make_partitioner
from repro.queries import wordcount_query
from repro.workloads.arrival import ConstantRate
from repro.workloads.synd import synd_source

RATE = 3_000.0
BATCHES = 24
# processing(T) ~ 0.4 + 0.7*T at 4+4 tasks: a 1 s interval is overloaded
# (load 1.1).  Resizing amortizes the 0.4 s of fixed stage costs over a
# longer interval (stable near T=4); elasticity instead parallelizes the
# per-tuple share away and stays at T=1.
COST = TaskCostModel(map_fixed=0.2, reduce_fixed=0.2, map_per_tuple=9.3e-4)


def _run(*, batch_sizing=None, elasticity=None, cores=8):
    config = EngineConfig(
        batch_interval=1.0,
        num_blocks=4,
        num_reducers=4,
        cluster=ClusterConfig(num_nodes=cores // 4, cores_per_node=4),
        cost_model=COST,
        batch_sizing=batch_sizing,
        elasticity=elasticity,
        track_outputs=False,
    )
    engine = MicroBatchEngine(make_partitioner("prompt"), wordcount_query(), config)
    source = synd_source(0.8, num_keys=500, arrival=ConstantRate(RATE), seed=3)
    return engine.run(source, BATCHES)


def test_ext_batch_sizing_vs_elasticity(benchmark, record_experiment):
    def run():
        fixed = _run()
        sized = _run(
            batch_sizing=BatchSizingConfig(
                target_ratio=0.8, min_interval=0.5, max_interval=8.0
            )
        )
        elastic = _run(
            elasticity=ElasticityConfig(
                threshold=0.9, step=0.3, window=2, grace=1,
                max_map_tasks=16, max_reduce_tasks=16,
            ),
            cores=32,
        )
        rows = []
        for label, result in (
            ("fixed interval", fixed),
            ("batch resizing (Das et al.)", sized),
            ("Prompt elasticity (Alg 4)", elastic),
        ):
            tail = result.stats.records[-6:]
            rows.append(
                {
                    "Strategy": label,
                    "FinalInterval": tail[-1].batch_interval,
                    "FinalTasks": f"{tail[-1].map_tasks}+{tail[-1].reduce_tasks}",
                    "TailLoad": sum(r.load for r in tail) / len(tail),
                    "TailLatency": sum(r.latency for r in tail) / len(tail),
                    "MaxQueueDelay": result.stats.max_queue_delay(),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_experiment(
        "ext_batch_sizing",
        format_table(rows, title="Extension: stabilization strategies under overload"),
        rows,
        store=dict(partitioner="prompt", backend="serial"),
    )
    fixed, sized, elastic = rows
    # fixed interval diverges (queueing), the other two settle
    assert fixed["MaxQueueDelay"] > sized["MaxQueueDelay"]
    assert fixed["MaxQueueDelay"] > elastic["MaxQueueDelay"]
    assert sized["TailLoad"] <= 1.0
    assert elastic["TailLoad"] <= 1.0
    # the paper's point: resizing pays with latency, elasticity does not
    assert sized["TailLatency"] > 1.5 * elastic["TailLatency"]
    assert sized["FinalInterval"] > 1.0
    assert elastic["FinalInterval"] == 1.0