"""Figure 13: reduce-task completion-time distribution, Time-based vs Prompt.

Paper shape: under the default time-based partitioner the per-batch
reduce times are highly variable (wide band between mean and max);
Prompt collapses the spread, which is what keeps latency bounded while
throughput rises.
"""

from __future__ import annotations

from repro.bench import fig13_latency_distribution, format_table


def test_fig13_latency_distribution(benchmark, record_experiment):
    out = benchmark.pedantic(
        lambda: fig13_latency_distribution(
            techniques=("time", "prompt"),
            num_batches=60,
            rate=12_000.0,
            exponent=1.2,
        ),
        rounds=1,
        iterations=1,
    )
    summary_rows = [
        {
            "Technique": name,
            "MeanReduceTime": data["mean_reduce_time"],
            "MeanMaxReduceTime": data["mean_max_reduce_time"],
            "MeanSpread(max-mean)": data["mean_spread"],
            "LatencyMean": data["latency_mean"],
            "LatencyP95": data["latency_p95"],
        }
        for name, data in out["techniques"].items()
    ]
    record_experiment(
        "fig13_latency_distribution",
        format_table(summary_rows, title="Figure 13: reduce-task time distribution (60 batches)"),
        {
            name: {k: v for k, v in data.items() if k != "series"}
            for name, data in out["techniques"].items()
        },
        store=dict(workload="tweets", backend="serial"),
    )
    time_based = out["techniques"]["time"]
    prompt = out["techniques"]["prompt"]
    # Prompt tightens the reduce-time band and the tail latency.
    assert prompt["mean_spread"] < time_based["mean_spread"]
    assert prompt["latency_p95"] <= time_based["latency_p95"] * 1.05
