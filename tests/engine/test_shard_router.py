"""Shard routers: determinism, coverage, pickling, rebalance epochs."""

from __future__ import annotations

import pickle

import pytest

from repro.engine.sharding import (
    ROUTER_NAMES,
    ConsistentHashRouter,
    KeyRangeRouter,
    Rebalance,
    RoutingTable,
    make_router,
)

TENANTS = [f"tenant-{i}" for i in range(200)]


@pytest.mark.parametrize("name", ROUTER_NAMES)
@pytest.mark.parametrize("num_shards", [1, 2, 3, 8])
def test_routes_land_in_range_and_are_deterministic(name, num_shards):
    router = make_router(name, num_shards)
    first = [router.route(t) for t in TENANTS]
    assert all(0 <= s < num_shards for s in first)
    assert [router.route(t) for t in TENANTS] == first
    # a fresh instance routes identically — no hidden per-process state
    assert [make_router(name, num_shards).route(t) for t in TENANTS] == first


@pytest.mark.parametrize("name", ROUTER_NAMES)
def test_every_shard_gets_some_tenants(name):
    router = make_router(name, 4)
    owners = {router.route(t) for t in TENANTS}
    assert owners == {0, 1, 2, 3}


@pytest.mark.parametrize("name", ROUTER_NAMES)
def test_router_survives_pickling(name):
    router = make_router(name, 5)
    clone = pickle.loads(pickle.dumps(router))
    assert [clone.route(t) for t in TENANTS] == [
        router.route(t) for t in TENANTS
    ]


def test_unknown_router_name_rejected():
    with pytest.raises(ValueError, match="unknown router"):
        make_router("nonesuch", 2)


@pytest.mark.parametrize("name", ROUTER_NAMES)
def test_invalid_shard_count_rejected(name):
    with pytest.raises(ValueError):
        make_router(name, 0)


def test_consistent_hash_moves_few_tenants_on_growth():
    """Ring growth relocates a fraction ~1/(N+1), never a full reshuffle."""
    before = ConsistentHashRouter(4)
    after = ConsistentHashRouter(5)
    moved = sum(1 for t in TENANTS if before.route(t) != after.route(t))
    # modulo hashing would move ~4/5 of tenants; the ring moves ~1/5
    assert moved / len(TENANTS) < 0.5
    # tenants that moved must have moved TO the new shard's arcs only
    for t in TENANTS:
        if before.route(t) != after.route(t):
            assert after.route(t) == 4


def test_key_range_router_ranges_partition_the_space():
    router = KeyRangeRouter(3)
    edges = [router.range_of(s) for s in range(3)]
    assert edges[0][0] == 0
    assert edges[-1][1] == 1 << 32
    for (_, hi), (lo, _) in zip(edges, edges[1:]):
        assert hi == lo


def test_routing_table_applies_rebalances_by_epoch():
    router = make_router("hash", 2)
    tenant = "tenant-7"
    home = router.route(tenant)
    away = (home + 1) % 2
    table = RoutingTable(router, [Rebalance(tenant, away, at_batch=3)])
    assert [table.shard_for(tenant, b) for b in range(6)] == [
        home, home, home, away, away, away,
    ]
    # untouched tenants never move
    other = "tenant-8"
    assert all(
        table.shard_for(other, b) == router.route(other) for b in range(6)
    )


def test_routing_table_latest_rebalance_wins():
    router = make_router("hash", 3)
    tenant = "tenant-1"
    table = RoutingTable(
        router,
        [Rebalance(tenant, 2, at_batch=1), Rebalance(tenant, 0, at_batch=4)],
    )
    assert table.shard_for(tenant, 2) == 2
    assert table.shard_for(tenant, 4) == 0


def test_routing_table_rejects_out_of_range_target():
    with pytest.raises(ValueError, match="out of range"):
        RoutingTable(make_router("hash", 2), [Rebalance("t", 2, at_batch=0)])


def test_rebalance_validates_fields():
    with pytest.raises(ValueError):
        Rebalance("t", -1, at_batch=0)
    with pytest.raises(ValueError):
        Rebalance("t", 0, at_batch=-1)


def test_assignment_snapshot():
    table = RoutingTable(make_router("key-range", 2))
    snap = table.assignment(["a", "b", "c"], 0)
    assert set(snap) == {"a", "b", "c"}
    assert all(s in (0, 1) for s in snap.values())
