"""Processing-phase partitioning — the B-BPVC heuristic (Algorithm 3).

After a Map task runs, its output is a set of *key clusters* (all values
sharing a key).  Clusters must be routed to Reduce buckets such that
(1) every fragment of a key — across *all* Map tasks — meets at one
Reducer, and (2) bucket loads are even.  Global coordination among Map
tasks would stall the pipeline, so Algorithm 3 makes purely local
decisions:

- Keys marked *split* in the block reference table are assigned by
  hashing: every Map task hashes identically, so fragments of a split
  key converge on one bucket with zero communication.
- Non-split keys exist in exactly one Map task, which is therefore free
  to place them: it sorts them by decreasing size and uses **WorstFit**
  (roomiest bucket first) with *retirement* — a bucket that receives a
  cluster leaves the candidate set until every bucket has received one —
  promoting both size balance and cardinality balance.

The underlying problem, bin packing into bins whose capacities were
eroded unevenly by the hashed split keys, is *Balanced Bin Packing with
Variable Capacity* (Definition 2), NP-complete (Theorem 2).  Because
each Map task independently minimizes its own imbalance, the additive
overall imbalance shrinks (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Collection, Mapping, Sequence

from .hashing import hash_to_bucket
from .tuples import Key, _order_token

__all__ = [
    "KeyCluster",
    "BucketAssignment",
    "ReduceBucketAllocator",
    "hash_allocate",
    "hash_reduce_allocation",
    "bpvc_reduce_allocation",
]


@dataclass(frozen=True, slots=True)
class KeyCluster:
    """One key's portion of a Map task's intermediate output."""

    key: Key
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"cluster size must be >= 0, got {self.size}")


@dataclass(slots=True)
class BucketAssignment:
    """Cluster-to-bucket routing produced by one Map task."""

    num_buckets: int
    assignment: dict[Key, int] = field(default_factory=dict)
    bucket_loads: list[int] = field(default_factory=list)

    def load_of(self, bucket: int) -> int:
        return self.bucket_loads[bucket]

    @property
    def max_load(self) -> int:
        return max(self.bucket_loads, default=0)

    @property
    def imbalance(self) -> float:
        """Bucket-size imbalance (Eqn. 3) of this task's own output."""
        if not self.bucket_loads:
            return 0.0
        return self.max_load - sum(self.bucket_loads) / len(self.bucket_loads)


def hash_allocate(
    clusters: Sequence[KeyCluster], num_buckets: int
) -> BucketAssignment:
    """The conventional hashing assignment (Figure 8a) — baseline behaviour."""
    out = BucketAssignment(num_buckets=num_buckets, bucket_loads=[0] * num_buckets)
    for cluster in clusters:
        bucket = hash_to_bucket(cluster.key, num_buckets)
        out.assignment[cluster.key] = bucket
        out.bucket_loads[bucket] += cluster.size
    return out


def hash_reduce_allocation(
    clusters: Sequence[KeyCluster],
    split_keys: Collection[Key] | Mapping[Key, object],
    num_buckets: int,
) -> BucketAssignment:
    """Module-level hashing allocation (``split_keys`` is irrelevant to it).

    Execution backends ship this by *reference* to worker processes —
    pickling a function defined at module scope costs bytes, not a copy
    of any partitioner state.
    """
    return hash_allocate(list(clusters), num_buckets)


def bpvc_reduce_allocation(
    clusters: Sequence[KeyCluster],
    split_keys: Collection[Key] | Mapping[Key, object],
    num_buckets: int,
) -> BucketAssignment:
    """Module-level Algorithm 3 allocation (stateless; safe across processes)."""
    return ReduceBucketAllocator(num_buckets).allocate(list(clusters), split_keys)


class ReduceBucketAllocator:
    """Algorithm 3: local, load-aware Reduce bucket allocation."""

    def __init__(self, num_buckets: int) -> None:
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.num_buckets = num_buckets

    def allocate(
        self,
        clusters: Sequence[KeyCluster],
        split_keys: Collection[Key] | Mapping[Key, object] = (),
    ) -> BucketAssignment:
        """Route ``clusters`` to buckets given the block reference table.

        ``split_keys`` is the set of keys this Map task must route by
        hashing (they also exist in other blocks).
        """
        r = self.num_buckets
        out = BucketAssignment(num_buckets=r, bucket_loads=[0] * r)
        total = sum(c.size for c in clusters)

        # Line 2: split keys go by hashing so all their fragments meet.
        non_split: list[KeyCluster] = []
        for cluster in clusters:
            if cluster.key in split_keys:
                bucket = hash_to_bucket(cluster.key, r)
                out.assignment[cluster.key] = bucket
                out.bucket_loads[bucket] += cluster.size
            else:
                non_split.append(cluster)

        # Line 4: sort non-split clusters by decreasing size.
        non_split.sort(key=lambda c: (-c.size, _order_token(c.key)))

        # Zero-size clusters carry no load, so WorstFit has no signal to
        # spread them (with total == 0 every capacity is 0 and the
        # overflow fallback would dump them all on bucket 0 — worst-case
        # cardinality imbalance).  Round-robin keeps their *count*
        # balanced instead; they sorted to the tail in deterministic key
        # order, so the placement is stable.
        zero_sized = [c for c in non_split if c.size == 0]
        non_split = [c for c in non_split if c.size > 0]

        # Lines 5-12: WorstFit with bucket retirement.  Capacity is the
        # residual of the expected equal share Bucket_size = |C| / |R|
        # after the hashed split keys landed (the variable capacities of
        # B-BPVC); buckets eroded past their share (e.g. the one owning
        # a hot split key) are excluded until nothing else has room —
        # B-BPVC requirement (1) limits bucket overflow.
        expected = -(-total // r) if total else 0  # ceil(|C| / |R|)

        def capacity(j: int) -> int:
            return expected - out.bucket_loads[j]

        candidates = [j for j in range(r) if capacity(j) > 0]
        for cluster in non_split:
            if not candidates:
                candidates = [j for j in range(r) if capacity(j) > 0]
            if not candidates:
                # Every bucket is at/over its share: fall back to the
                # globally least-loaded bucket.
                best = min(range(r), key=lambda j: (out.bucket_loads[j], j))
            else:
                # WorstFit: the candidate with maximum remaining capacity.
                best = min(candidates, key=lambda j: (-capacity(j), j))
                candidates.remove(best)
            out.assignment[cluster.key] = best
            out.bucket_loads[best] += cluster.size
        for i, cluster in enumerate(zero_sized):
            out.assignment[cluster.key] = i % r
        return out
