"""Cost-model metrics: BSI, BCI, KSR, MPI (Eqns. 2-6)."""

from __future__ import annotations

import pytest

from repro.core.batch import BatchInfo, DataBlock, PartitionedBatch
from repro.core.config import MPIWeights
from repro.core.metrics import (
    block_cardinality_imbalance,
    block_size_imbalance,
    evaluate_partition,
    key_split_ratio,
    micro_batch_partitioning_imbalance,
    relative_metric,
)
from repro.core.tuples import StreamTuple


def _block(index, sizes: dict):
    block = DataBlock(index)
    for key, n in sizes.items():
        block.add_fragment(key, [StreamTuple(ts=0.0, key=key) for _ in range(n)])
    return block


def _batch(*block_specs):
    blocks = [_block(i, spec) for i, spec in enumerate(block_specs)]
    batch = PartitionedBatch(info=BatchInfo(0, 0.0, 1.0), blocks=blocks)
    batch.compute_split_keys()
    return batch


def test_bsi_hand_computed():
    blocks = [_block(0, {"a": 10}), _block(1, {"b": 4}), _block(2, {"c": 4})]
    # sizes 10, 4, 4 -> max 10, avg 6 -> BSI 4
    assert block_size_imbalance(blocks) == pytest.approx(4.0)


def test_bsi_zero_for_equal_blocks():
    blocks = [_block(0, {"a": 5}), _block(1, {"b": 5})]
    assert block_size_imbalance(blocks) == 0.0


def test_bsi_empty():
    assert block_size_imbalance([]) == 0.0


def test_bci_hand_computed():
    blocks = [
        _block(0, {"a": 1, "b": 1, "c": 1}),  # cardinality 3
        _block(1, {"d": 3}),                   # cardinality 1
    ]
    assert block_cardinality_imbalance(blocks) == pytest.approx(1.0)


def test_ksr_one_when_no_splits():
    batch = _batch({"a": 3}, {"b": 2})
    assert key_split_ratio(batch) == 1.0


def test_ksr_counts_fragments():
    # "a" split over both blocks: 3 fragments over 2 keys = 1.5
    batch = _batch({"a": 2, "b": 1}, {"a": 1})
    assert key_split_ratio(batch) == pytest.approx(3 / 2)


def test_ksr_empty_batch():
    batch = _batch()
    assert key_split_ratio(batch) == 1.0


def test_mpi_zero_for_perfect_partition():
    batch = _batch({"a": 3, "b": 3}, {"c": 3, "d": 3})
    assert micro_batch_partitioning_imbalance(batch) == pytest.approx(0.0)


def test_mpi_weights_must_sum_to_one():
    with pytest.raises(ValueError):
        MPIWeights(p1=0.5, p2=0.5, p3=0.5)
    with pytest.raises(ValueError):
        MPIWeights(p1=-0.2, p2=0.6, p3=0.6)


def test_mpi_extreme_weights_select_single_metric():
    # One block fat (size imbalance), but no splits, balanced keys.
    batch = _batch({"a": 9, "b": 1}, {"c": 1, "d": 1})
    size_only = micro_batch_partitioning_imbalance(batch, MPIWeights(1.0, 0.0, 0.0))
    locality_only = micro_batch_partitioning_imbalance(batch, MPIWeights(0.0, 0.0, 1.0))
    assert size_only > 0
    assert locality_only == pytest.approx(0.0)


def test_mpi_increases_with_splits():
    no_split = _batch({"a": 2}, {"b": 2})
    split = _batch({"a": 2}, {"a": 2})
    w = MPIWeights(0.0, 0.0, 1.0)
    assert micro_batch_partitioning_imbalance(split, w) > micro_batch_partitioning_imbalance(no_split, w)


def test_evaluate_partition_bundle():
    batch = _batch({"a": 4, "b": 2}, {"c": 2})
    quality = evaluate_partition(batch)
    assert quality.bsi == pytest.approx(2.0)
    assert quality.bci == pytest.approx(0.5)
    assert quality.ksr == 1.0
    assert quality.max_block_size == 6
    assert quality.avg_block_size == pytest.approx(4.0)
    assert quality.max_block_cardinality == 2
    row = quality.as_row()
    assert set(row) == {"BSI", "BCI", "KSR", "MPI"}


def test_relative_metric():
    assert relative_metric(5.0, 10.0) == pytest.approx(0.5)
    assert relative_metric(0.0, 0.0) == 0.0
    assert relative_metric(1.0, 0.0) == float("inf")
    assert relative_metric(10.0, 10.0) == pytest.approx(1.0)
