"""Adaptive batch sizing controller and its engine integration."""

from __future__ import annotations

import pytest

from repro.engine.cluster import ClusterConfig
from repro.engine.engine import EngineConfig, MicroBatchEngine
from repro.engine.tasks import TaskCostModel
from repro.extensions.batch_sizing import BatchSizeController, BatchSizingConfig
from repro.partitioners import make_partitioner
from repro.queries import wordcount_query
from repro.workloads.arrival import ConstantRate
from repro.workloads.synd import synd_source


# ----------------------------------------------------------------------
# controller unit behaviour
# ----------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError):
        BatchSizingConfig(target_ratio=1.0)
    with pytest.raises(ValueError):
        BatchSizingConfig(min_interval=0.0)
    with pytest.raises(ValueError):
        BatchSizingConfig(min_interval=5.0, max_interval=1.0)
    with pytest.raises(ValueError):
        BatchSizingConfig(window=1)
    with pytest.raises(ValueError):
        BatchSizingConfig(max_step=0.0)


def test_seed_and_clamping():
    ctl = BatchSizeController(BatchSizingConfig(min_interval=0.5, max_interval=4.0))
    ctl.seed(100.0)
    assert ctl.current_interval == 4.0
    ctl.seed(0.01)
    assert ctl.current_interval == 0.5


def test_observe_validation():
    ctl = BatchSizeController()
    with pytest.raises(ValueError):
        ctl.observe(0.0, 0.5)
    with pytest.raises(ValueError):
        ctl.observe(1.0, -0.1)


def test_overloaded_system_grows_interval():
    cfg = BatchSizingConfig(target_ratio=0.8, min_interval=0.25, max_interval=16.0)
    ctl = BatchSizeController(cfg)
    ctl.seed(1.0)
    # processing keeps exceeding the interval: interval must grow
    interval = 1.0
    for _ in range(10):
        ctl.observe(interval, processing_time=interval * 1.2)
        interval = ctl.next_interval()
    assert interval > 1.0


def test_underloaded_system_shrinks_interval():
    ctl = BatchSizeController(BatchSizingConfig(target_ratio=0.8))
    ctl.seed(4.0)
    interval = 4.0
    for _ in range(10):
        ctl.observe(interval, processing_time=0.2 * interval)
        interval = ctl.next_interval()
    assert interval < 4.0


def test_fixed_point_convergence_on_linear_plant():
    """Plant: P(T) = 0.4*T + 0.3. Fixed point of P = 0.8T: T = 0.75."""
    ctl = BatchSizeController(BatchSizingConfig(target_ratio=0.8, max_step=1.0))
    ctl.seed(2.0)
    interval = 2.0
    for _ in range(25):
        ctl.observe(interval, processing_time=0.4 * interval + 0.3)
        interval = ctl.next_interval()
    assert interval == pytest.approx(0.75, rel=0.05)
    # at the fixed point the load sits at the target ratio
    assert (0.4 * interval + 0.3) / interval == pytest.approx(0.8, rel=0.05)


def test_unstable_slope_pushes_toward_max():
    """P(T) = 1.1*T: no interval satisfies the target; grow to the cap."""
    cfg = BatchSizingConfig(target_ratio=0.8, max_interval=8.0, max_step=1.0)
    ctl = BatchSizeController(cfg)
    ctl.seed(1.0)
    interval = 1.0
    for _ in range(20):
        ctl.observe(interval, processing_time=1.1 * interval)
        interval = ctl.next_interval()
    assert interval == pytest.approx(8.0)


def test_slew_rate_limit():
    ctl = BatchSizeController(BatchSizingConfig(max_step=0.2, max_interval=100.0))
    ctl.seed(1.0)
    ctl.observe(1.0, processing_time=50.0)  # demands a huge jump
    assert ctl.next_interval() <= 1.2 + 1e-9


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------
def _engine(batch_sizing=None, rate=3_000.0):
    # Heavy *fixed* per-stage cost: processing(T) ~ 1.0 + 0.28*T, so a
    # 1 s interval is overloaded (load 1.28) but any interval above
    # ~1.9 s is stable — the regime interval resizing is built for.
    config = EngineConfig(
        batch_interval=1.0,
        num_blocks=4,
        num_reducers=4,
        cluster=ClusterConfig(num_nodes=2, cores_per_node=4),
        cost_model=TaskCostModel(
            map_fixed=0.5, reduce_fixed=0.5, map_per_tuple=3.5e-4
        ),
        batch_sizing=batch_sizing,
        track_outputs=False,
    )
    engine = MicroBatchEngine(make_partitioner("hash"), wordcount_query(), config)
    source = synd_source(0.8, num_keys=500, arrival=ConstantRate(rate), seed=3)
    return engine.run(source, 14)


def test_fixed_interval_overload_queues_batches():
    result = _engine(batch_sizing=None)
    assert not result.stable
    assert result.stats.max_queue_delay() > 1.0


def test_batch_sizing_restores_stability_by_growing_latency():
    sized = _engine(
        batch_sizing=BatchSizingConfig(
            target_ratio=0.8, min_interval=0.5, max_interval=8.0
        )
    )
    records = sized.stats.records
    # intervals grew beyond the seed
    assert records[-1].batch_interval > 1.0
    # the tail of the run is stable: processing fits the interval
    tail = records[-4:]
    assert all(r.load <= 1.0 for r in tail)
    # ... but end-to-end latency grew with the interval (the trade-off)
    assert tail[-1].latency > 1.5


def test_batch_sizing_records_variable_intervals():
    sized = _engine(
        batch_sizing=BatchSizingConfig(
            target_ratio=0.8, min_interval=0.5, max_interval=8.0
        )
    )
    intervals = {round(r.batch_interval, 3) for r in sized.stats.records}
    assert len(intervals) > 1  # the interval actually moved
    # timeline is contiguous: each batch starts at the previous heartbeat
    records = sized.stats.records
    for prev, cur in zip(records, records[1:]):
        assert cur.t_start == pytest.approx(prev.heartbeat)
