"""Adversarial hot-key flips: the head of the distribution moves mid-window.

Adaptive partitioners learn "key X is hot" from history (sketches, EWMA
rate tables, routing tables).  The adversarial axis invalidates exactly
that knowledge: every ``flip_interval`` seconds the identities carrying
the top ``hot_ranks`` of the popularity distribution are swapped with a
rotating window of previously-cold identities.  A technique that keeps
splitting (or keeps isolated) yesterday's hot keys pays for it; a
technique that re-detects quickly recovers within a batch or two.

The swap is a true permutation of the identity space — total frequency
mass and instantaneous cardinality are unchanged, only *which* keys are
hot flips — so quality differences between techniques are attributable
to adaptation speed alone.  ``flip_interval`` defaults to a fraction of
a typical batch interval, so flips land mid-window, not aligned to
batch boundaries.
"""

from __future__ import annotations

import numpy as np

from ..core.tuples import StreamTuple
from .arrival import ArrivalProcess, ConstantRate
from .source import DatasetProperties, StreamSource
from .zipf import ZipfSampler

__all__ = ["HotKeyFlipSource", "hot_key_flip_source"]


class HotKeyFlipSource(StreamSource):
    """Zipf stream whose hottest identities rotate adversarially."""

    def __init__(
        self,
        name: str = "hot-flip",
        *,
        arrival: ArrivalProcess,
        num_keys: int,
        exponent: float,
        flip_interval: float,
        hot_ranks: int = 4,
        seed: int = 0,
        dataset: DatasetProperties | None = None,
    ) -> None:
        if flip_interval <= 0:
            raise ValueError("flip_interval must be positive")
        if hot_ranks < 1:
            raise ValueError("hot_ranks must be >= 1")
        if num_keys <= 2 * hot_ranks:
            raise ValueError("num_keys must exceed 2 * hot_ranks")
        self.name = name
        self.arrival = arrival
        self.seed = seed
        self.flip_interval = flip_interval
        self.hot_ranks = hot_ranks
        self._sampler = ZipfSampler(num_keys, exponent, seed=seed)
        self._dataset = dataset

    @property
    def num_keys(self) -> int:
        return self._sampler.num_keys

    @property
    def exponent(self) -> float:
        return self._sampler.exponent

    def properties(self) -> DatasetProperties | None:
        return self._dataset

    def reset(self) -> None:
        self.arrival.reset()
        self._sampler.reseed(self.seed)

    def _identity(self, rank: int, phase: int) -> int:
        """Phase-``phase`` permutation of the identity space.

        The ``hot_ranks`` head ranks map into a rotating window of the
        tail; the tail identities displaced by that window map back onto
        the head ids.  Bijective for every phase, identity elsewhere.
        """
        m = self.hot_ranks
        tail = self._sampler.num_keys - m
        offset = (phase * m) % tail
        if rank < m:
            return m + (offset + rank) % tail
        shifted = (rank - m - offset) % tail
        if shifted < m:
            return shifted
        return rank

    def tuples_between(self, t0: float, t1: float) -> list[StreamTuple]:
        count = self.arrival.count_between(t0, t1)
        if count == 0:
            return []
        timestamps = self.arrival.timestamps(t0, t1, count)
        ranks = self._sampler.sample(count)
        phases = np.floor(np.asarray(timestamps) / self.flip_interval).astype(np.int64)
        identity = self._identity
        return [
            StreamTuple(ts=float(ts), key=f"a{identity(int(rank), int(phase))}", value=None)
            for ts, rank, phase in zip(timestamps, ranks, phases)
        ]


def hot_key_flip_source(
    *,
    rate: float = 5_000.0,
    num_keys: int = 2_000,
    exponent: float = 1.4,
    flip_interval: float = 0.4,
    hot_ranks: int = 4,
    arrival: ArrivalProcess | None = None,
    seed: int = 0,
) -> HotKeyFlipSource:
    """An adversarial stream flipping its hot keys every 0.4s by default."""
    if arrival is None:
        arrival = ConstantRate(rate)
    props = DatasetProperties(
        name="HotFlip",
        paper_size="n/a",
        paper_cardinality=str(num_keys),
        scaled_cardinality=num_keys,
        description="Zipf stream with adversarial mid-window hot-key flips.",
    )
    return HotKeyFlipSource(
        name=f"hot-flip-z{exponent:g}",
        arrival=arrival,
        num_keys=num_keys,
        exponent=exponent,
        flip_interval=flip_interval,
        hot_ranks=hot_ranks,
        seed=seed,
        dataset=props,
    )
