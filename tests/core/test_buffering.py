"""Micro-batch accumulator (Algorithm 1): budgeted quasi-sorting."""

from __future__ import annotations

import random

import pytest

from repro.core.batch import BatchInfo
from repro.core.buffering import MicroBatchAccumulator
from repro.core.config import AccumulatorConfig
from repro.core.tuples import StreamTuple

from ..conftest import make_tuples, zipfish_freqs


def _info(index=0, t0=0.0, t1=1.0):
    return BatchInfo(index=index, t_start=t0, t_end=t1)


def _feed(acc, tuples):
    for t in tuples:
        acc.accept(t)


def test_requires_open_interval():
    acc = MicroBatchAccumulator()
    with pytest.raises(RuntimeError):
        _ = acc.info
    with pytest.raises(RuntimeError):
        acc.accept(StreamTuple(ts=0.0, key="a"))


def test_rejects_empty_interval():
    acc = MicroBatchAccumulator()
    with pytest.raises(ValueError):
        acc.start_interval(BatchInfo(0, 1.0, 1.0))


def test_counts_tuples_and_keys():
    acc = MicroBatchAccumulator()
    acc.start_interval(_info())
    _feed(acc, make_tuples({"a": 3, "b": 2, "c": 1}))
    assert acc.tuple_count == 6
    assert acc.key_count == 3


def test_finalize_packages_all_tuples():
    acc = MicroBatchAccumulator()
    acc.start_interval(_info())
    tuples = make_tuples({"a": 5, "b": 3, "c": 2}, shuffle_seed=1)
    _feed(acc, tuples)
    batch = acc.finalize()
    assert batch.tuple_count == 10
    assert batch.key_count == 3
    assert sum(g.count for g in batch.key_groups) == 10
    assert {g.key for g in batch.key_groups} == {"a", "b", "c"}


def test_finalize_resets_structures():
    acc = MicroBatchAccumulator()
    acc.start_interval(_info())
    _feed(acc, make_tuples({"a": 2}))
    acc.finalize()
    assert acc.htable.tuple_count == 0
    assert len(acc.count_tree) == 0
    with pytest.raises(RuntimeError):
        _ = acc.info


def test_exact_mode_yields_fully_sorted_groups():
    acc = MicroBatchAccumulator(exact_updates=True)
    acc.start_interval(_info())
    _feed(acc, make_tuples(zipfish_freqs(30, 600), shuffle_seed=5))
    batch = acc.finalize()
    sizes = [g.size for g in batch.key_groups]
    assert sizes == sorted(sizes, reverse=True)
    assert batch.sort_quality() == 1.0


def test_exact_mode_tracked_counts_match_exact_counts():
    acc = MicroBatchAccumulator(exact_updates=True)
    acc.start_interval(_info())
    _feed(acc, make_tuples({"a": 7, "b": 4}, shuffle_seed=2))
    batch = acc.finalize()
    for g in batch.key_groups:
        assert g.tracked_count == g.count


def test_budget_limits_tree_updates():
    config = AccumulatorConfig(budget=2, expected_tuples=1000, expected_keys=10)
    acc = MicroBatchAccumulator(config)
    acc.start_interval(_info())
    _feed(acc, make_tuples({"hot": 500}, spacing=1e-6))
    # one insert (not counted as update) + at most `budget` repositionings
    assert acc.tree_updates <= config.budget


def test_budgeted_quasi_sort_is_good_on_skewed_data():
    config = AccumulatorConfig(budget=8, expected_tuples=1000, expected_keys=50)
    acc = MicroBatchAccumulator(config)
    acc.start_interval(_info())
    _feed(acc, make_tuples(zipfish_freqs(50, 1000), spacing=1e-4, shuffle_seed=9))
    batch = acc.finalize()
    # Quasi-sorted: the overwhelming majority of adjacent pairs ordered.
    assert batch.sort_quality() >= 0.85
    # And the actual hottest key surfaces at/near the top.
    top_keys = [g.key for g in batch.key_groups[:3]]
    assert "k0" in top_keys


def test_tree_updates_much_cheaper_than_per_tuple():
    n = 2000
    config = AccumulatorConfig(budget=4, expected_tuples=n, expected_keys=20)
    acc = MicroBatchAccumulator(config)
    acc.start_interval(_info())
    _feed(acc, make_tuples(zipfish_freqs(20, n), spacing=1e-5, shuffle_seed=3))
    batch = acc.finalize()
    # Bounded by roughly budget * K, far below one update per tuple.
    assert batch.tree_updates <= config.budget * batch.key_count
    assert batch.tree_updates < batch.tuple_count / 4


def test_time_step_triggers_updates_for_slow_keys():
    """A key receiving sparse tuples still refreshes via t.step."""
    config = AccumulatorConfig(budget=4, expected_tuples=10_000, expected_keys=2)
    acc = MicroBatchAccumulator(config)
    acc.start_interval(_info(t1=10.0))
    # f.step is initially huge (10_000/(2*4)); only t.step can fire.
    for i in range(8):
        acc.accept(StreamTuple(ts=i * 1.2, key="slow"))
    record = acc.htable.get("slow")
    assert record.freq_updated > 1  # got refreshed beyond the insert


def test_history_adapts_estimates():
    config = AccumulatorConfig(budget=4, expected_tuples=10, expected_keys=1)
    acc = MicroBatchAccumulator(config)
    for k in range(3):
        acc.start_interval(_info(index=k, t0=float(k), t1=float(k + 1)))
        _feed(
            acc,
            make_tuples({f"x{i}": 4 for i in range(25)}, start=float(k), spacing=1e-4),
        )
        acc.finalize()
    assert acc.estimated_tuples() == 100
    assert acc.average_keys() == 25


def test_data_rate_property():
    acc = MicroBatchAccumulator()
    acc.start_interval(_info(t1=2.0))
    _feed(acc, make_tuples({"a": 100}, spacing=1e-4))
    batch = acc.finalize()
    assert batch.data_rate == pytest.approx(50.0)


def test_data_rate_non_positive_interval_is_zero():
    # start_interval rejects empty intervals, but AccumulatedBatch can be
    # constructed directly (e.g. by replay tooling); a degenerate interval
    # must not report tuple_count as if the interval were one second.
    from repro.core.buffering import AccumulatedBatch

    zero = AccumulatedBatch(
        info=BatchInfo(0, 1.0, 1.0),
        key_groups=[],
        tuple_count=100,
        total_weight=100,
        tree_updates=0,
    )
    assert zero.data_rate == 0.0
    negative = AccumulatedBatch(
        info=BatchInfo(0, 2.0, 1.0),
        key_groups=[],
        tuple_count=100,
        total_weight=100,
        tree_updates=0,
    )
    assert negative.data_rate == 0.0


def test_arrival_order_reconstruction():
    acc = MicroBatchAccumulator()
    acc.start_interval(_info())
    tuples = make_tuples({"a": 3, "b": 3}, shuffle_seed=13)
    _feed(acc, tuples)
    batch = acc.finalize()
    assert [t.ts for t in batch.arrival_order()] == sorted(t.ts for t in tuples)


def test_total_weight_tracked():
    acc = MicroBatchAccumulator()
    acc.start_interval(_info())
    acc.accept(StreamTuple(ts=0.0, key="a", weight=5))
    acc.accept(StreamTuple(ts=0.1, key="b", weight=2))
    batch = acc.finalize()
    assert batch.total_weight == 7


def test_consecutive_intervals_are_independent():
    acc = MicroBatchAccumulator()
    acc.start_interval(_info(index=0))
    _feed(acc, make_tuples({"a": 10}))
    first = acc.finalize()
    acc.start_interval(_info(index=1, t0=1.0, t1=2.0))
    _feed(acc, make_tuples({"b": 5}, start=1.0))
    second = acc.finalize()
    assert first.key_count == 1 and second.key_count == 1
    assert {g.key for g in second.key_groups} == {"b"}


def test_sort_quality_of_single_key_batch_is_one():
    acc = MicroBatchAccumulator()
    acc.start_interval(_info())
    _feed(acc, make_tuples({"only": 5}))
    assert acc.finalize().sort_quality() == 1.0
