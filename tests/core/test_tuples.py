"""Tuple model: StreamTuple, KeyGroup, grouping helpers, TupleBuffer."""

from __future__ import annotations

import pytest

from repro.core.tuples import (
    KeyGroup,
    StreamTuple,
    TupleBuffer,
    group_by_key,
    key_sizes,
    sorted_key_groups,
    total_weight,
)


def test_stream_tuple_fields():
    t = StreamTuple(ts=1.5, key="a", value=42, weight=2)
    assert (t.ts, t.key, t.value, t.weight) == (1.5, "a", 42, 2)


def test_stream_tuple_is_immutable():
    t = StreamTuple(ts=0.0, key="a")
    with pytest.raises(AttributeError):
        t.key = "b"


def test_stream_tuple_rejects_non_positive_weight():
    with pytest.raises(ValueError):
        StreamTuple(ts=0.0, key="a", weight=0)
    with pytest.raises(ValueError):
        StreamTuple(ts=0.0, key="a", weight=-3)


def test_default_weight_is_one():
    assert StreamTuple(ts=0.0, key="a").weight == 1


def test_group_by_key_preserves_order_within_key():
    tuples = [
        StreamTuple(ts=0.0, key="a", value=1),
        StreamTuple(ts=0.1, key="b", value=2),
        StreamTuple(ts=0.2, key="a", value=3),
    ]
    groups = group_by_key(tuples)
    assert [t.value for t in groups["a"]] == [1, 3]
    assert [t.value for t in groups["b"]] == [2]


def test_key_sizes_sums_weights():
    tuples = [
        StreamTuple(ts=0.0, key="a", weight=2),
        StreamTuple(ts=0.1, key="a", weight=3),
        StreamTuple(ts=0.2, key="b", weight=1),
    ]
    assert key_sizes(tuples) == {"a": 5, "b": 1}


def test_total_weight():
    tuples = [StreamTuple(ts=0.0, key=k, weight=w) for k, w in [("a", 1), ("b", 4)]]
    assert total_weight(tuples) == 5


def test_key_group_size_and_count():
    g = KeyGroup(
        key="a",
        tuples=[StreamTuple(ts=0.0, key="a", weight=2) for _ in range(3)],
        tracked_count=2,
    )
    assert g.size == 6
    assert g.count == 3
    assert len(g) == 3
    assert g.tracked_count == 2


def test_sorted_key_groups_descending():
    tuples = (
        [StreamTuple(ts=0.0, key="small")]
        + [StreamTuple(ts=0.0, key="big") for _ in range(5)]
        + [StreamTuple(ts=0.0, key="mid") for _ in range(3)]
    )
    groups = sorted_key_groups(tuples)
    assert [g.key for g in groups] == ["big", "mid", "small"]
    assert [g.size for g in groups] == [5, 3, 1]


def test_sorted_key_groups_ascending():
    tuples = [StreamTuple(ts=0.0, key="a")] + [
        StreamTuple(ts=0.0, key="b") for _ in range(2)
    ]
    groups = sorted_key_groups(tuples, descending=False)
    assert [g.key for g in groups] == ["a", "b"]


def test_sorted_key_groups_handles_mixed_key_types():
    tuples = [StreamTuple(ts=0.0, key=1), StreamTuple(ts=0.0, key="1")]
    groups = sorted_key_groups(tuples)
    assert len(groups) == 2


def test_tuple_buffer_accounting():
    buf = TupleBuffer()
    assert len(buf) == 0
    assert buf.weight == 0
    buf.append(StreamTuple(ts=0.0, key="a", weight=2))
    buf.extend([StreamTuple(ts=0.1, key="b", weight=3)])
    assert len(buf) == 2
    assert buf.weight == 5
    assert buf[0].key == "a"
    assert [t.key for t in buf] == ["a", "b"]
    assert buf.as_list()[1].key == "b"
    buf.clear()
    assert len(buf) == 0
    assert buf.weight == 0


def test_tuple_buffer_from_iterable():
    buf = TupleBuffer(StreamTuple(ts=0.0, key=i) for i in range(4))
    assert len(buf) == 4
    assert buf.weight == 4
