#!/usr/bin/env python3
"""Quickstart: run a windowed WordCount through the micro-batch engine.

Streams a synthetic tweet-word workload through the simulated engine
under Prompt's partitioning scheme for a dozen one-second batches via
the one-shot :func:`repro.run` entry point, then prints per-batch
execution records plus the final sliding window's hottest words — the
smallest end-to-end tour of the library.  A second act fans a
multi-tenant stream across two engines with the v1 ``topology=``
argument and shows the per-shard spread.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.bench import render_run
from repro.queries import select_top_k, wordcount_query
from repro.workloads import MultiTenantSource, TenantStream, tweets_source


def main() -> None:
    # One call: a 5,000 words/second tweet stream, a 10-second sliding
    # WordCount window, Prompt partitioning, 12 one-second batches on
    # the default simulated 4-node x 4-core cluster.  Engine knobs
    # travel as a typed EngineConfig — executor="parallel" would fan
    # the tasks out over a process pool with bit-identical results.
    result = repro.run(
        tweets_source(rate=5_000.0, seed=42),
        wordcount_query(window_length=10.0),
        partitioner="prompt",
        num_batches=12,
        engine=repro.EngineConfig(
            batch_interval=1.0,
            num_blocks=8,
            num_reducers=8,
        ),
    )

    print("batch  tuples  keys   processing  load(W)  latency")
    for record in result.stats.records:
        print(
            f"{record.index:>5}  {record.tuple_count:>6}  {record.key_count:>5}"
            f"  {record.processing_time:>9.3f}s  {record.load:>6.2f}  {record.latency:>6.3f}s"
        )

    print(f"\nthroughput: {result.stats.throughput():,.0f} tuples/s")
    print(f"mean latency: {result.stats.mean_latency():.3f}s")
    print(f"stable (no back-pressure): {result.stable}")

    print("\ntop words in the final window:")
    for word, count in select_top_k(result.final_window_answer(), 5):
        print(f"  {word:>8}  {count}")

    print()
    print(render_run(result, title="run report"))

    # Act two: the same entry point, sharded.  Three tenant streams
    # become one tagged union; topology=Sharded(...) routes each tenant
    # to one of two independent engines and merges the window answers
    # in deterministic (tenant, key) order — byte-identical to running
    # every tenant on its own engine.
    union = MultiTenantSource(
        [
            TenantStream(name, tweets_source(rate=1_500.0, seed=seed))
            for name, seed in (("news", 1), ("finance", 2), ("games", 3))
        ]
    )
    sharded = repro.run(
        union,
        wordcount_query(window_length=4.0),
        num_batches=6,
        topology=repro.Sharded(shards=2, router="consistent-hash"),
        engine=repro.EngineConfig(batch_interval=1.0, num_blocks=4),
    )
    print("sharded topology: 2 engines behind the consistent-hash router")
    for shard, shard_result in enumerate(sharded.shard_results):
        tenants = sorted(
            t for t, owners in sharded.tenant_shards.items() if shard in owners
        )
        print(
            f"  shard {shard}: tenants={', '.join(tenants) or '-'}  "
            f"tuples={shard_result.stats.total_tuples:,}  "
            f"stable={shard_result.stable}"
        )
    print(f"aggregate throughput: {sharded.throughput():,.0f} tuples/s")
    news = sharded.tenant_answers("news")[-1]
    print("top news words:", select_top_k(news, 3))


if __name__ == "__main__":
    main()
