"""Failure injection and exactly-once recovery (Section 8)."""

from __future__ import annotations

import time

import pytest

from repro.core.tuples import StreamTuple
from repro.engine.faults import (
    FailureInjector,
    InjectedTaskFault,
    TaskFault,
    TaskFaultInjector,
    TransientTaskError,
    recover_batch,
)
from repro.engine.state import StateStore
from repro.queries.base import Query, SumAggregator


def _query():
    return Query(name="sum", aggregator=SumAggregator())


def _tuples():
    return [
        StreamTuple(ts=0.0, key="a", value=1),
        StreamTuple(ts=0.1, key="b", value=2),
        StreamTuple(ts=0.2, key="a", value=3),
    ]


def test_recover_batch_recomputes_from_replica():
    store = StateStore(replicate_inputs=True)
    query = _query()
    tuples = _tuples()
    store.put(0, query.reference_output(tuples), tuples)
    store.drop_output(0)
    recovered = recover_batch(store, 0, query)
    assert dict(recovered) == {"a": 4, "b": 2}
    assert dict(store.get(0).output) == {"a": 4, "b": 2}


def test_recover_unreplicated_state_fails():
    store = StateStore()
    store.put(0, {"a": 1})
    with pytest.raises(RuntimeError, match="unrecoverable"):
        recover_batch(store, 0, _query())


def test_injector_exactly_once():
    store = StateStore(replicate_inputs=True)
    query = _query()
    tuples = _tuples()
    store.put(3, query.reference_output(tuples), tuples)
    injector = FailureInjector([3])
    assert injector.should_fail(3)
    assert not injector.should_fail(2)
    event = injector.fail_and_recover(store, 3, query)
    assert event.matched_original
    assert event.recovered_keys == 2
    assert injector.events == [event]


def test_injector_detects_nondeterministic_query():
    """A query whose recomputation differs flags the mismatch."""
    store = StateStore(replicate_inputs=True)
    tuples = _tuples()
    query = _query()
    store.put(0, {"a": 999}, tuples)  # wrong original state
    injector = FailureInjector([0])
    event = injector.fail_and_recover(store, 0, query)
    assert not event.matched_original


def test_injector_empty_by_default():
    injector = FailureInjector()
    assert not injector.should_fail(0)
    assert injector.events == []


# ----------------------------------------------------------------------
# task-level fault injection
# ----------------------------------------------------------------------
def test_task_fault_crash_gates_on_attempt():
    fault = TaskFault(crashes=2)
    with pytest.raises(InjectedTaskFault):
        fault.apply(0)
    with pytest.raises(InjectedTaskFault):
        fault.apply(1)
    fault.apply(2)  # past the doomed attempts: no-op


def test_injected_fault_is_transient():
    """The synthetic crash must count as retryable for the backend."""
    assert issubclass(InjectedTaskFault, TransientTaskError)


def test_task_fault_delay_gates_on_attempt():
    fault = TaskFault(delay=0.05, delay_attempts=1)
    start = time.perf_counter()
    fault.apply(0)
    assert time.perf_counter() - start >= 0.05
    start = time.perf_counter()
    fault.apply(1)  # past the delayed attempts: immediate
    assert time.perf_counter() - start < 0.05


def test_task_fault_poison_past_budget_is_noop():
    # attempt >= poisons must NOT os._exit — the retried attempt survives
    TaskFault(poisons=1).apply(1)


def test_task_fault_validation():
    with pytest.raises(ValueError):
        TaskFault(crashes=-1)
    with pytest.raises(ValueError):
        TaskFault(delay=-0.1)


def test_task_fault_injector_registers_and_looks_up():
    injector = (
        TaskFaultInjector()
        .crash(0, "map", 1, times=2)
        .poison(3, "reduce", 0)
        .delay(1, "map", 2, seconds=0.5)
    )
    assert len(injector) == 3
    assert injector.fault_for(0, "map", 1) == TaskFault(crashes=2)
    assert injector.fault_for(3, "reduce", 0) == TaskFault(poisons=1)
    assert injector.fault_for(1, "map", 2) == TaskFault(
        delay=0.5, delay_attempts=1
    )
    assert injector.fault_for(0, "map", 0) is None
    assert injector.fault_for(0, "reduce", 1) is None


def test_task_fault_injector_merges_same_coordinate():
    """Chained registrations on one coordinate compose into one plan."""
    injector = (
        TaskFaultInjector()
        .delay(0, "map", 0, seconds=0.2)
        .crash(0, "map", 0, times=1)
    )
    assert len(injector) == 1
    assert injector.fault_for(0, "map", 0) == TaskFault(
        crashes=1, delay=0.2, delay_attempts=1
    )


def test_task_fault_injector_rejects_bad_arguments():
    injector = TaskFaultInjector()
    with pytest.raises(ValueError, match="kind"):
        injector.crash(0, "shuffle", 0)
    with pytest.raises(ValueError, match="times"):
        injector.crash(0, "map", 0, times=0)
    with pytest.raises(ValueError, match="seconds"):
        injector.delay(0, "map", 0, seconds=0.0)
