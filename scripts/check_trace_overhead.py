#!/usr/bin/env python3
"""CI guard: observability artifacts are valid and tracing stays cheap.

Runs the quickstart workload twice — untraced, then traced with every
export enabled — and checks:

1. the Chrome trace-event JSON loads and contains the expected nested
   span names (run -> batch -> task phases);
2. the Prometheus text snapshot parses and carries the core series;
3. traced wall-clock stays within ``--max-ratio`` (default 1.25x) of
   the untraced run, with an absolute slack floor so sub-second runs on
   noisy CI machines cannot flake the ratio.

The same three checks then repeat for the pipelined driver
(``pipeline_depth=2``): its artifacts must additionally carry the
``pipeline_wait``/``execute`` spans and the depth gauge + stall
histogram, and tracing the pipelined run must stay within the same
overhead budget against its own untraced baseline.

Exit code 0 on success; prints the failure and exits 1 otherwise.
Artifacts are left at ``--outdir`` for upload.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro import EngineConfig, MicroBatchEngine, make_partitioner
from repro.obs import ObservabilityConfig, parse_prometheus, read_chrome_trace
from repro.queries import wordcount_query
from repro.workloads import tweets_source

#: wall-clock slack added to the ratio bound: scheduler jitter on a
#: shared CI runner can dominate a run this short
ABSOLUTE_SLACK_SECONDS = 0.75

REQUIRED_SPANS = {
    "run", "batch", "buffer", "partition",
    "map_task", "shuffle", "reduce_task", "window_merge",
}
#: additionally required when the driver pipelines (pipeline_depth=2)
REQUIRED_PIPELINE_SPANS = {"pipeline_wait", "execute"}
REQUIRED_SAMPLES = (
    "prompt_batches_total",
    "prompt_tuples_total",
    "prompt_batch_latency_seconds_count",
    "prompt_partition_plan_seconds_count",
    "prompt_task_attempts_total",
)
REQUIRED_PIPELINE_SAMPLES = (
    "prompt_pipeline_depth",
    "prompt_pipeline_stall_seconds_count",
)


def _run_quickstart(
    obs: ObservabilityConfig | None, *, pipeline_depth: int = 1
) -> float:
    engine = MicroBatchEngine(
        make_partitioner("prompt"),
        wordcount_query(window_length=10.0),
        EngineConfig(
            batch_interval=1.0,
            num_blocks=8,
            num_reducers=8,
            pipeline_depth=pipeline_depth,
            observability=obs,
        ),
    )
    started = time.perf_counter()
    engine.run(tweets_source(rate=5_000.0, seed=42), num_batches=12)
    return time.perf_counter() - started


#: generous ceiling for the guarded no-op span pattern in the dispatch
#: loops (seconds per iteration) — the real cost is a truthiness check,
#: ~10ns, so tripping this means someone reintroduced per-task span
#: construction on the untraced path
NOOP_SPAN_BUDGET_SECONDS = 2e-6
NOOP_SPAN_ITERATIONS = 200_000


def check_noop_span_cost() -> float:
    """Measure the untraced per-task span pattern of the dispatch loops.

    ``execute_batch_tasks`` guards span construction behind
    ``tracer.enabled`` and reuses one shared ``nullcontext`` — entering
    a context manager per task would otherwise dominate the serial
    dispatch loop when observability is off.  This micro-bench runs the
    exact guarded pattern against the no-op tracer and asserts it stays
    effectively free.
    """
    from repro.engine.tasks import _NULL_CM
    from repro.obs.tracing import NULL_TRACER

    tracer = NULL_TRACER
    traced = tracer.enabled
    started = time.perf_counter()
    for i in range(NOOP_SPAN_ITERATIONS):
        with tracer.span("map_task", task_id=i) if traced else _NULL_CM:
            pass
    return (time.perf_counter() - started) / NOOP_SPAN_ITERATIONS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default="obs-artifacts")
    parser.add_argument("--max-ratio", type=float, default=1.25)
    args = parser.parse_args(argv)

    per_iter = check_noop_span_cost()
    if per_iter > NOOP_SPAN_BUDGET_SECONDS:
        print(
            f"FAIL: untraced per-task span pattern costs {per_iter:.2e}s/iter "
            f"(budget {NOOP_SPAN_BUDGET_SECONDS:.0e}s) — the dispatch loops "
            f"are paying for spans with tracing off"
        )
        return 1
    print(f"ok: untraced span guard costs {per_iter:.2e}s/iter")

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    trace_path = outdir / "quickstart.trace.json"
    metrics_path = outdir / "quickstart.prom"
    jsonl_path = outdir / "quickstart.jsonl"

    # warm-up evens out import/JIT-cache effects between the two runs
    _run_quickstart(None)
    untraced = _run_quickstart(None)
    traced = _run_quickstart(
        ObservabilityConfig(
            trace_path=str(trace_path),
            metrics_path=str(metrics_path),
            jsonl_path=str(jsonl_path),
        )
    )

    events = read_chrome_trace(trace_path)
    names = {e["name"] for e in events}
    missing = REQUIRED_SPANS - names
    if missing:
        print(f"FAIL: trace is missing span names: {sorted(missing)}")
        return 1
    roots = [e for e in events if "parent_id" not in e.get("args", {})]
    if len(roots) != 1 or roots[0]["name"] != "run":
        print(f"FAIL: expected a single 'run' root span, got {roots}")
        return 1

    samples = parse_prometheus(metrics_path.read_text())
    for required in REQUIRED_SAMPLES:
        if required not in samples:
            print(f"FAIL: metrics snapshot is missing {required!r}")
            return 1
    if samples["prompt_batches_total"] != 12:
        print(f"FAIL: expected 12 batches, got {samples['prompt_batches_total']}")
        return 1

    budget = untraced * args.max_ratio + ABSOLUTE_SLACK_SECONDS
    verdict = "ok" if traced <= budget else "FAIL"
    print(
        f"{verdict}: untraced={untraced:.3f}s traced={traced:.3f}s "
        f"budget={budget:.3f}s (ratio bound {args.max_ratio}x "
        f"+ {ABSOLUTE_SLACK_SECONDS}s slack); "
        f"{len(events)} trace events, {len(samples)} metric samples"
    )
    if traced > budget:
        return 1

    # -- pipelined driver (pipeline_depth=2) ---------------------------
    pipe_trace_path = outdir / "quickstart-depth2.trace.json"
    pipe_metrics_path = outdir / "quickstart-depth2.prom"
    pipe_untraced = _run_quickstart(None, pipeline_depth=2)
    pipe_traced = _run_quickstart(
        ObservabilityConfig(
            trace_path=str(pipe_trace_path),
            metrics_path=str(pipe_metrics_path),
        ),
        pipeline_depth=2,
    )

    pipe_events = read_chrome_trace(pipe_trace_path)
    pipe_names = {e["name"] for e in pipe_events}
    missing = (REQUIRED_SPANS | REQUIRED_PIPELINE_SPANS) - pipe_names
    if missing:
        print(f"FAIL: depth-2 trace is missing span names: {sorted(missing)}")
        return 1

    pipe_samples = parse_prometheus(pipe_metrics_path.read_text())
    for required in REQUIRED_SAMPLES + REQUIRED_PIPELINE_SAMPLES:
        if required not in pipe_samples:
            print(f"FAIL: depth-2 metrics snapshot is missing {required!r}")
            return 1
    if pipe_samples["prompt_pipeline_depth"] != 2:
        print(
            f"FAIL: expected depth gauge 2, got "
            f"{pipe_samples['prompt_pipeline_depth']}"
        )
        return 1

    pipe_budget = pipe_untraced * args.max_ratio + ABSOLUTE_SLACK_SECONDS
    verdict = "ok" if pipe_traced <= pipe_budget else "FAIL"
    print(
        f"{verdict} (pipeline_depth=2): untraced={pipe_untraced:.3f}s "
        f"traced={pipe_traced:.3f}s budget={pipe_budget:.3f}s; "
        f"{len(pipe_events)} trace events, {len(pipe_samples)} metric samples"
    )
    return 0 if pipe_traced <= pipe_budget else 1


if __name__ == "__main__":
    sys.exit(main())
