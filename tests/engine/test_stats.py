"""BatchRecord / RunStats derived quantities."""

from __future__ import annotations

import pytest

from repro.engine.stats import BatchRecord, RunStats, percentile


def _record(index, *, interval=1.0, queue=0.0, processing=0.5, tuples=100,
            reduce_durations=(0.1, 0.2), partition_elapsed=0.01):
    heartbeat = (index + 1) * interval
    start = heartbeat + queue
    return BatchRecord(
        index=index,
        t_start=index * interval,
        heartbeat=heartbeat,
        ready_at=heartbeat,
        exec_start=start,
        exec_finish=start + processing,
        processing_time=processing,
        tuple_count=tuples,
        key_count=10,
        map_tasks=4,
        reduce_tasks=len(reduce_durations),
        map_durations=(0.3, 0.4),
        reduce_durations=reduce_durations,
        bucket_weights=(50, 50),
        partition_elapsed=partition_elapsed,
    )


def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(values, 50) == 3.0
    assert percentile(values, 95) == 5.0
    assert percentile(values, 0) == 1.0
    assert percentile([], 50) == 0.0
    with pytest.raises(ValueError):
        percentile(values, 101)


def test_record_derived_quantities():
    r = _record(2, queue=0.25, processing=0.5)
    assert r.batch_interval == 1.0
    assert r.queue_delay == pytest.approx(0.25)
    # latency: interval (1.0) + queue (0.25) + processing (0.5)
    assert r.latency == pytest.approx(1.75)
    assert r.load == pytest.approx(0.5)
    assert r.max_reduce_time == pytest.approx(0.2)
    assert r.mean_reduce_time == pytest.approx(0.15)


def test_run_stats_throughput():
    stats = RunStats(batch_interval=1.0)
    for i in range(4):
        stats.add(_record(i, tuples=200))
    # 800 tuples over 4 seconds of batching
    assert stats.throughput() == pytest.approx(200.0)
    assert stats.total_tuples == 800


def test_run_stats_latency_aggregates():
    stats = RunStats(batch_interval=1.0)
    stats.add(_record(0, processing=0.2))
    stats.add(_record(1, processing=0.6))
    assert stats.mean_latency() == pytest.approx(1.4)
    assert stats.p95_latency() == pytest.approx(1.6)


def test_run_stats_stability():
    good = RunStats(batch_interval=1.0)
    for i in range(5):
        good.add(_record(i, processing=0.8))
    assert good.is_stable()

    bad = RunStats(batch_interval=1.0)
    for i in range(5):
        bad.add(_record(i, processing=1.4, queue=1.5 * i))
    assert not bad.is_stable()


def test_run_stats_mean_load_with_skip():
    stats = RunStats(batch_interval=1.0)
    stats.add(_record(0, processing=10.0))  # warm-up outlier
    for i in range(1, 5):
        stats.add(_record(i, processing=0.5))
    assert stats.mean_load(skip=1) == pytest.approx(0.5)


def test_series_extracts():
    stats = RunStats(batch_interval=1.0)
    stats.add(_record(0))
    stats.add(_record(1, reduce_durations=(0.3, 0.5)))
    reduce_series = stats.reduce_time_series()
    assert reduce_series[1] == (1, pytest.approx(0.4), pytest.approx(0.5))
    assert stats.task_count_series() == [(0, 4, 2), (1, 4, 2)]
    assert stats.partition_overhead_fractions() == [
        pytest.approx(0.01),
        pytest.approx(0.01),
    ]


def test_empty_run_stats():
    stats = RunStats(batch_interval=1.0)
    assert stats.throughput() == 0.0
    assert stats.mean_latency() == 0.0
    assert stats.is_stable()
    assert stats.max_queue_delay() == 0.0
