"""Simulated cluster: nodes, executors, cores, and stage makespans.

The paper runs 20 EC2 nodes with 16 cores each and bounds the number of
data blocks by the executor core count "to avoid any Map task queuing"
(Section 7).  We model the cluster as a pool of executors contributing
cores; a stage of parallel tasks occupies cores under LPT (longest
processing time first) list scheduling, whose makespan is the stage's
duration — ``max task time`` exactly when tasks <= cores, per Eqn. 1.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

__all__ = ["ClusterConfig", "Cluster", "makespan"]


def makespan(durations: Sequence[float], cores: int) -> float:
    """LPT list-scheduling makespan of independent tasks on ``cores`` cores.

    With ``len(durations) <= cores`` this is ``max(durations)`` — the
    regime the paper keeps the Map stage in.  Beyond that, tasks queue
    (Cases II-IV of Figure 2) and the makespan grows accordingly.
    """
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores}")
    if not durations:
        return 0.0
    if any(d < 0 for d in durations):
        raise ValueError("task durations must be non-negative")
    if len(durations) <= cores:
        return max(durations)
    finish = [0.0] * cores
    heapq.heapify(finish)
    for d in sorted(durations, reverse=True):
        earliest = heapq.heappop(finish)
        heapq.heappush(finish, earliest + d)
    return max(finish)


@dataclass(frozen=True, slots=True)
class ClusterConfig:
    """Static shape of the simulated cluster."""

    num_nodes: int = 4
    cores_per_node: int = 4

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.cores_per_node < 1:
            raise ValueError(f"cores_per_node must be >= 1, got {self.cores_per_node}")

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.cores_per_node


class Cluster:
    """Executor pool with elastic allocation.

    ``allocated_cores`` is what the current execution plan may use; the
    elasticity controller grows or shrinks it within the physical bound
    (``config.total_cores``), mirroring Prompt's on-demand resources.
    """

    def __init__(self, config: ClusterConfig | None = None, *, allocated_cores: int | None = None) -> None:
        self.config = config or ClusterConfig()
        total = self.config.total_cores
        self._allocated = total if allocated_cores is None else allocated_cores
        if not 1 <= self._allocated <= total:
            raise ValueError(
                f"allocated_cores must be in [1, {total}], got {self._allocated}"
            )

    @property
    def total_cores(self) -> int:
        return self.config.total_cores

    @property
    def allocated_cores(self) -> int:
        return self._allocated

    def allocate(self, cores: int) -> int:
        """Set the allocation, clamped to physical bounds; returns actual."""
        self._allocated = min(max(1, cores), self.total_cores)
        return self._allocated

    def stage_makespan(self, durations: Sequence[float]) -> float:
        """Makespan of one stage on the currently allocated cores."""
        return makespan(durations, self._allocated)
