"""Time-based partitioning (Section 2.2.1) — Spark Streaming's default.

The batch interval is split into ``p`` consecutive, equal-length *block
intervals*; every tuple lands in the block of the period it arrived in.
Block sizes therefore track the instantaneous data rate: a steady rate
gives balanced blocks, a variable rate does not, and there is never any
key-placement guarantee.
"""

from __future__ import annotations

from typing import Sequence

from ..core.batch import BatchInfo, DataBlock
from ..core.tuples import StreamTuple
from .base import StreamingPartitioner

__all__ = ["TimeBasedPartitioner"]


class TimeBasedPartitioner(StreamingPartitioner):
    """Assign tuples to blocks by arrival time within the batch interval."""

    name = "time"

    def assign(
        self,
        t: StreamTuple,
        seq: int,
        blocks: Sequence[DataBlock],
        info: BatchInfo,
    ) -> int:
        interval = info.interval
        if interval <= 0:
            return 0
        offset = (t.ts - info.t_start) / interval
        index = int(offset * len(blocks))
        # Tuples timestamped exactly at (or re-ordered slightly past) the
        # boundary stay in the edge blocks.
        return min(max(index, 0), len(blocks) - 1)
