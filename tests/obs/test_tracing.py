"""Span tracer: nesting, stitching, signatures, and the null path."""

from __future__ import annotations

import os

from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer, WorkerSpan


def test_span_nesting_follows_the_stack():
    tr = Tracer()
    with tr.span("run"):
        with tr.span("batch", index=0):
            with tr.span("buffer"):
                pass
            with tr.span("partition"):
                pass
    by_name = {s.name: s for s in tr.spans}
    assert by_name["run"].parent_id is None
    assert by_name["batch"].parent_id == by_name["run"].span_id
    assert by_name["buffer"].parent_id == by_name["batch"].span_id
    assert by_name["partition"].parent_id == by_name["batch"].span_id
    assert by_name["batch"].attrs == {"index": 0}


def test_explicit_start_end_and_current():
    tr = Tracer()
    outer = tr.start("run")
    assert tr.current is outer
    inner = tr.start("batch")
    assert tr.current is inner
    tr.end(inner)
    tr.end(outer, batches=3)
    assert tr.current is None
    assert outer.attrs["batches"] == 3
    assert all(s.finished for s in tr.spans)
    assert outer.duration >= inner.duration >= 0.0


def test_end_closes_leaked_children():
    tr = Tracer()
    outer = tr.start("run")
    tr.start("batch")  # never explicitly ended
    tr.end(outer)
    assert tr.current is None


def test_record_stitches_worker_spans_with_pid():
    tr = Tracer()
    with tr.span("batch") as batch:
        ws = WorkerSpan(pid=4242, start=10.0, end=10.5)
        stitched = tr.record(
            "map_task", ws.start, ws.end, pid=ws.pid, task_id=3, attempt=1
        )
    assert stitched.parent_id == batch.span_id
    assert stitched.pid == 4242
    assert stitched.duration == 0.5
    assert stitched.attrs == {"task_id": 3, "attempt": 1}
    # driver spans carry the driver pid
    assert batch.pid == os.getpid()


def test_event_is_zero_duration():
    tr = Tracer()
    with tr.span("batch"):
        ev = tr.event("task_retry", task_id=1)
    assert ev.duration == 0.0
    assert ev.attrs == {"task_id": 1}


def test_tree_signature_ignores_time_pid_and_order():
    def build(order):
        tr = Tracer()
        with tr.span("run"):
            with tr.span("batch"):
                for name, pid in order:
                    tr.record(name, 0.0, float(pid), pid=pid, task_id=pid)
        return tr.tree_signature()

    a = build([("map_task", 1), ("reduce_task", 2)])
    b = build([("reduce_task", 9), ("map_task", 7)])
    assert a == b


def test_tree_signature_detects_structural_difference():
    tr1, tr2 = Tracer(), Tracer()
    with tr1.span("run"):
        with tr1.span("batch"):
            pass
    with tr2.span("run"):
        with tr2.span("batch"):
            pass
        with tr2.span("batch"):
            pass
    assert tr1.tree_signature() != tr2.tree_signature()


def test_null_tracer_is_inert():
    tr = NullTracer()
    assert not tr.enabled
    with tr.span("anything") as s:
        inner = tr.start("more")
        tr.end(inner)
        tr.record("map_task", 0.0, 1.0)
        tr.event("marker")
    assert s is inner  # the shared dummy span
    assert len(tr) == 0
    assert tr.tree_signature() == ()
    assert not NULL_TRACER.enabled


def test_span_duration_clamps_open_spans():
    s = Span(name="x", span_id=1, parent_id=None, start=100.0)
    assert s.duration == 0.0
    assert not s.finished
