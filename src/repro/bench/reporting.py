"""Plain-text table/series rendering and JSON result persistence.

Every bench regenerates its paper artifact as aligned text rows printed
to stdout (pytest shows them with ``-s`` / on benchmark runs) and as a
JSON document under ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = ["format_table", "format_series", "save_results", "results_dir"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == math.inf:
            return "inf"
        if value == -math.inf:
            return "-inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    *,
    title: str = "",
) -> str:
    """Render mappings as an aligned monospace table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns:
        cols = list(columns)
    else:
        # ordered union of every row's keys: heterogeneous rows (e.g. a
        # gate row joining measurement rows) must not silently drop
        # whatever the first row happened to lack
        cols = list(dict.fromkeys(key for row in rows for key in row))
    rendered = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    points: Sequence[tuple[Any, ...]],
    headers: Sequence[str],
    *,
    title: str = "",
) -> str:
    """Render (x, y, ...) tuples as an aligned series listing."""
    rows = [dict(zip(headers, p)) for p in points]
    return format_table(rows, headers, title=title)


def results_dir() -> Path:
    """``benchmarks/results/`` next to the repository root."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            out = parent / "benchmarks" / "results"
            out.mkdir(parents=True, exist_ok=True)
            return out
    out = Path.cwd() / "benchmark-results"
    out.mkdir(parents=True, exist_ok=True)
    return out


def save_results(name: str, payload: Any) -> Path:
    """Persist one experiment's structured results as JSON."""
    path = results_dir() / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str))
    return path
