"""Stream tuple and key-fragment data model.

The paper (Section 2.1) defines the input stream ``S`` as an infinite
sequence of tuples ``t = (ts, k, v)``: a source-assigned timestamp, a
partitioning key, and a value payload.  Keys are not unique; tuples that
share a key form a *key fragment* when co-located in one data block
(Section 3.3).

This module provides the immutable tuple record used throughout the
repository plus light-weight helpers for grouping tuples by key.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator, Mapping, Sequence

Key = Hashable


@dataclass(frozen=True, slots=True)
class StreamTuple:
    """A single stream record ``(ts, key, value)``.

    ``weight`` is the tuple's size in abstract cost units.  The paper
    assumes unit-size tuples "without loss of granularity" (Section 4.2)
    but notes the formulation extends to variable sizes; we carry the
    weight so that extension is exercised by tests.
    """

    ts: float
    key: Key
    value: Any = None
    weight: int = 1

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"tuple weight must be positive, got {self.weight}")


@dataclass(slots=True)
class KeyGroup:
    """All tuples of one key within a micro-batch, with its exact count.

    Produced by the accumulator's final traversal
    (``SortedList<k, count, tupleList>`` in Algorithm 1) and consumed by
    the batch partitioner (Algorithm 2).

    ``tracked_count`` is the possibly-stale frequency recorded in the
    CountTree (the quasi-sorted order is based on it); ``size`` is the
    exact total weight from the HTable chain.
    """

    key: Key
    tuples: list[StreamTuple] = field(default_factory=list)
    tracked_count: int = 0

    @property
    def size(self) -> int:
        """Exact total weight of the group's tuples."""
        return sum(t.weight for t in self.tuples)

    @property
    def count(self) -> int:
        """Exact number of tuples in the group."""
        return len(self.tuples)

    def __len__(self) -> int:
        return len(self.tuples)


def group_by_key(tuples: Iterable[StreamTuple]) -> dict[Key, list[StreamTuple]]:
    """Group tuples by key preserving arrival order within each key."""
    groups: dict[Key, list[StreamTuple]] = defaultdict(list)
    for t in tuples:
        groups[t.key].append(t)
    return dict(groups)


def key_sizes(tuples: Iterable[StreamTuple]) -> dict[Key, int]:
    """Total weight per key."""
    sizes: dict[Key, int] = defaultdict(int)
    for t in tuples:
        sizes[t.key] += t.weight
    return dict(sizes)


def total_weight(tuples: Iterable[StreamTuple]) -> int:
    """Sum of tuple weights."""
    return sum(t.weight for t in tuples)


def sorted_key_groups(
    tuples: Iterable[StreamTuple], *, descending: bool = True
) -> list[KeyGroup]:
    """Exactly-sorted key groups (the *post-sort* ablation baseline).

    This is what a system without frequency-aware buffering must do at
    the heartbeat: a dedicated sorting step over all keys (Figure 14a
    compares Prompt against this).
    """
    groups = group_by_key(tuples)
    out = [
        KeyGroup(key=k, tuples=v, tracked_count=len(v)) for k, v in groups.items()
    ]
    out.sort(key=lambda g: (g.size, _order_token(g.key)), reverse=descending)
    return out


def _order_token(key: Key) -> str:
    """Stable, type-agnostic tiebreak token for ordering mixed key types."""
    return f"{type(key).__name__}:{key!r}"


class TupleBuffer:
    """An append-only buffer of tuples with O(1) size/weight accounting."""

    __slots__ = ("_tuples", "_weight")

    def __init__(self, tuples: Iterable[StreamTuple] = ()) -> None:
        self._tuples: list[StreamTuple] = []
        self._weight = 0
        for t in tuples:
            self.append(t)

    def append(self, t: StreamTuple) -> None:
        self._tuples.append(t)
        self._weight += t.weight

    def extend(self, tuples: Iterable[StreamTuple]) -> None:
        for t in tuples:
            self.append(t)

    @property
    def weight(self) -> int:
        return self._weight

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[StreamTuple]:
        return iter(self._tuples)

    def __getitem__(self, idx: int) -> StreamTuple:
        return self._tuples[idx]

    def as_list(self) -> list[StreamTuple]:
        return list(self._tuples)

    def clear(self) -> None:
        self._tuples.clear()
        self._weight = 0
