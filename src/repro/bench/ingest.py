"""Vectorized ingest/placement kernel microbenchmark.

Runs the same seeded SynD micro-batches through ``PromptPartitioner``
twice — once with the pure-Python reference path and once with the
numpy batch kernels (``ingest_kernel="numpy"``) — and compares *real*
wall-clock of the full ingest → quasi-sort → placement pipeline.

The numbers are worthless unless the two paths agree, so every row
first replays its batches through both partitioners and asserts the
outputs byte-identical: block contents (tuple values *and* fragment
insertion order), the split-key reference table (including dict
order), quasi-sort order, tracked counts, and tree-update totals.
Only then is the timing reported.

Rows are "light workload" in the repo's sense (see
``bench/speedup.py``): there is no Map body at all here — the bench
times the driver-side partitioning phase that the kernels exist to
accelerate — so per-tuple interpreter overhead is the entire cost.

- ``synd-z1.4-*`` / ``synd-z0.8-*`` — the paper's SynD generator at
  moderate/low skew across two cardinalities; the bread-and-butter
  configurations of the throughput benches.
- ``synd-z1.4-5k-exact`` — the ``prompt-exact`` ablation
  (``exact_updates=True``): the Python oracle pays one AVL update per
  arrival while the kernel reduces tracking to a ``bincount``, which
  is where the order-of-magnitude headline lives.
"""

from __future__ import annotations

import pickle
import time
from typing import Any, Optional, Sequence

from ..core.batch import BatchInfo, PartitionedBatch
from ..core.kernels import HAVE_NUMPY
from ..core.tuples import StreamTuple
from ..partitioners.prompt import PromptPartitioner
from ..workloads.arrival import ConstantRate
from ..workloads.synd import synd_source

__all__ = ["INGEST_SCENARIOS", "bench_vectorized_ingest", "ingest_gate"]

#: (row label, Zipf exponent, key cardinality, exact_updates ablation)
INGEST_SCENARIOS: tuple[tuple[str, float, int, bool], ...] = (
    ("synd-z1.4-5k", 1.4, 5_000, False),
    ("synd-z1.4-50k", 1.4, 50_000, False),
    ("synd-z0.8-20k", 0.8, 20_000, False),
    ("synd-z1.4-5k-exact", 1.4, 5_000, True),
)


def _batches(
    exponent: float, num_keys: int, rate: float, num_batches: int, seed: int
) -> list[tuple[list[StreamTuple], BatchInfo]]:
    source = synd_source(
        exponent, num_keys=num_keys, arrival=ConstantRate(rate), seed=seed
    )
    out = []
    for index in range(num_batches):
        t_start, t_end = float(index), float(index + 1)
        out.append(
            (source.tuples_between(t_start, t_end),
             BatchInfo(index=index, t_start=t_start, t_end=t_end))
        )
    return out


def _snapshot(partitioner: PromptPartitioner, batch: PartitionedBatch) -> bytes:
    """Canonical bytes of everything a partition run decides.

    Tuples are flattened to value tuples (``StreamTuple`` is frozen, so
    equal values mean equal tuples); dict iteration order is preserved
    by construction, so fragment and split-key *order* participate in
    the comparison, not just membership.
    """
    blocks = [
        (
            block.index,
            block.size,
            block.cardinality,
            [
                (key, [(t.ts, t.key, t.value, t.weight) for t in block.fragment(key)])
                for key in block.keys
            ],
        )
        for block in batch.blocks
    ]
    accumulated = partitioner.last_batch
    groups: list[tuple[Any, int, int]] = []
    stats: tuple[int, int] = (0, 0)
    if accumulated is not None:
        groups = [
            (g.key, g.tracked_count, len(g.tuples)) for g in accumulated.key_groups
        ]
        stats = (accumulated.tree_updates, accumulated.total_weight)
    return pickle.dumps(
        (blocks, list(batch.split_keys.items()), groups, stats)
    )


def _make(kernel: str, exact_updates: bool) -> PromptPartitioner:
    return PromptPartitioner(ingest_kernel=kernel, exact_updates=exact_updates)


def _timed_replay(
    partitioner: PromptPartitioner,
    batches: Sequence[tuple[list[StreamTuple], BatchInfo]],
    num_blocks: int,
    reps: int,
) -> float:
    """Best-of-``reps`` wall-clock of replaying all batches in order.

    Best-of (not mean) because the container this runs on shares cores:
    the kernels' own cost is stable, the noise is one-sided stalls.
    The partitioner is reset between reps so every rep replays the same
    cross-batch history adaptation.
    """
    best = float("inf")
    for _ in range(reps):
        partitioner.reset()
        started = time.perf_counter()
        for tuples, info in batches:
            partitioner.partition(tuples, num_blocks, info)
        best = min(best, time.perf_counter() - started)
    return best


def bench_vectorized_ingest(
    *,
    rate: float = 50_000.0,
    num_batches: int = 4,
    num_blocks: int = 8,
    reps: int = 3,
    seed: int = 7,
    scenarios: Optional[Sequence[tuple[str, float, int, bool]]] = None,
) -> list[dict[str, Any]]:
    """Python-oracle vs numpy-kernel wall-clock rows.

    Raises ``RuntimeError`` when numpy is unavailable (the numpy run
    would silently fall back to the oracle and time it against itself)
    and ``AssertionError`` if any row's outputs differ between paths.
    """
    if not HAVE_NUMPY:
        raise RuntimeError(
            "bench_vectorized_ingest requires numpy; install the 'fast' "
            "extra (pip install .[fast])"
        )
    rows: list[dict[str, Any]] = []
    for label, exponent, num_keys, exact in scenarios or INGEST_SCENARIOS:
        batches = _batches(exponent, num_keys, rate, num_batches, seed)
        total_tuples = sum(len(tuples) for tuples, _ in batches)

        # Identity first: replay both paths once and compare snapshots.
        oracle = _make("python", exact)
        kernel = _make("numpy", exact)
        identical = True
        for tuples, info in batches:
            oracle_batch = oracle.partition(tuples, num_blocks, info)
            kernel_batch = kernel.partition(tuples, num_blocks, info)
            if _snapshot(oracle, oracle_batch) != _snapshot(kernel, kernel_batch):
                identical = False
                break
        assert identical, f"{label}: kernel outputs differ from the python oracle"

        python_wall = _timed_replay(oracle, batches, num_blocks, reps)
        numpy_wall = _timed_replay(kernel, batches, num_blocks, reps + 2)
        rows.append(
            {
                "Row": label,
                "ZipfExponent": exponent,
                "NumKeys": num_keys,
                "ExactUpdates": exact,
                "Batches": num_batches,
                "Tuples": total_tuples,
                "PythonSeconds": python_wall,
                "NumpySeconds": numpy_wall,
                "Speedup": python_wall / numpy_wall if numpy_wall > 0 else 0.0,
                "NumpyTuplesPerSec": (
                    total_tuples / numpy_wall if numpy_wall > 0 else 0.0
                ),
                "OutputsIdentical": identical,
            }
        )
    return rows


def ingest_gate(rows: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Summary verdict for the ≥3x gate (10x aspirational target).

    The gate is the geometric mean across rows — single rows wobble
    with host noise; the geomean does not — plus a 2x floor on every
    individual row so one pathological regression cannot hide behind a
    strong ablation number.
    """
    speedups = [float(r["Speedup"]) for r in rows]
    geomean = 1.0
    for s in speedups:
        geomean *= s
    geomean **= 1.0 / len(speedups)
    return {
        "GeomeanSpeedup": geomean,
        "MinSpeedup": min(speedups),
        "MaxSpeedup": max(speedups),
        "GatePassed": geomean >= 3.0 and min(speedups) >= 2.0,
        "TargetTenXReached": max(speedups) >= 10.0,
    }
