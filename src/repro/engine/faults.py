"""Failure injection and exactly-once recovery.

Section 8: "Exactly-once semantics is guaranteed by initially
replicating the input batch. ... In case of losing a batch's state due
to hardware failure, this state is recomputed using the replicated
batched data."  The injector declares which batches lose their state;
recovery recomputes the lost output from the replicated input and the
query definition, and the result must be byte-identical to the lost
one — the exactly-once property the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..core.tuples import Key
from ..queries.base import Query
from .state import StateStore

__all__ = ["FailureInjector", "RecoveryEvent", "recover_batch"]


@dataclass(frozen=True, slots=True)
class RecoveryEvent:
    """Record of one state loss and its recomputation."""

    batch_index: int
    recovered_keys: int
    matched_original: bool


def recover_batch(
    store: StateStore, index: int, query: Query
) -> Mapping[Key, Any]:
    """Recompute a lost batch state from its replicated input."""
    state = store.get(index)
    if not state.recoverable:
        raise RuntimeError(
            f"batch {index} has no replicated input; state is unrecoverable"
        )
    output = query.reference_output(state.replicated_input)
    store.restore(index, output)
    return output


class FailureInjector:
    """Deterministically fails the states of the configured batches."""

    def __init__(self, fail_batches: Iterable[int] = ()) -> None:
        self.fail_batches = frozenset(fail_batches)
        self.events: list[RecoveryEvent] = []

    def should_fail(self, index: int) -> bool:
        return index in self.fail_batches

    def fail_and_recover(
        self, store: StateStore, index: int, query: Query
    ) -> RecoveryEvent:
        """Drop batch ``index``'s output, recompute it, verify equality."""
        original = dict(store.get(index).output)
        store.drop_output(index)
        recovered = recover_batch(store, index, query)
        event = RecoveryEvent(
            batch_index=index,
            recovered_keys=len(recovered),
            matched_original=dict(recovered) == original,
        )
        self.events.append(event)
        return event
