"""Windowed query state with incremental inverse-Reduce maintenance.

Section 2.1/Figure 3: "The query answer is computed by aggregating the
output of all batches that reside within the query window.  To avoid
redundant recalculations, the micro-batches that exit the window are
reflected incrementally onto the query answer by applying an inverse
Reduce function."  The evaluation repeats the point (Section 7):
"Inverse Reduce functions are implemented for all window queries ...
previous in-window batch results are cached in memory."

:class:`WindowedAggregator` is exactly that machinery: a ring of cached
per-batch outputs plus a running merged answer, updated in O(changed
keys) per batch instead of O(window).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Mapping

from ..core.tuples import Key
from ..queries.base import Aggregator

__all__ = ["WindowedAggregator"]


class WindowedAggregator:
    """Sliding-window per-key aggregate over consecutive batch outputs."""

    def __init__(self, aggregator: Aggregator, batches_per_window: int) -> None:
        if batches_per_window < 1:
            raise ValueError(
                f"batches_per_window must be >= 1, got {batches_per_window}"
            )
        self.aggregator = aggregator
        self.batches_per_window = batches_per_window
        self._cached: Deque[Mapping[Key, Any]] = deque()
        self._answer: dict[Key, Any] = {}

    def __len__(self) -> int:
        """Number of batches currently inside the window."""
        return len(self._cached)

    def add_batch(self, batch_output: Mapping[Key, Any]) -> dict[Key, Any]:
        """Slide the window forward by one batch and return the answer.

        Merges the new batch in; if the window is full, the oldest batch
        is inverse-applied (retracted) — never recomputed.
        """
        agg = self.aggregator
        if len(self._cached) == self.batches_per_window:
            expired = self._cached.popleft()
            zero = agg.zero()
            for key, acc in expired.items():
                # An absent key means its in-window accumulators cancel
                # to zero (kept sparse below); retract from that zero.
                current = self._answer.get(key, zero)
                reduced = agg.inverse(current, acc)
                if reduced == zero:
                    self._answer.pop(key, None)
                else:
                    self._answer[key] = reduced
        zero = agg.zero()
        for key, acc in batch_output.items():
            current = self._answer.get(key)
            merged = acc if current is None else agg.merge(current, acc)
            if merged == zero:
                # A zero accumulator (e.g. +5 and -5 summed) is
                # indistinguishable from absence; keep the answer sparse
                # so merges and retractions agree.
                self._answer.pop(key, None)
            else:
                self._answer[key] = merged
        self._cached.append(batch_output)
        return dict(self._answer)

    def answer(self) -> dict[Key, Any]:
        """The current window answer (per-key accumulator values)."""
        return dict(self._answer)

    def finalized_answer(self) -> dict[Key, Any]:
        """The answer with accumulators finalized (e.g. means from sums)."""
        return {k: self.aggregator.finalize(v) for k, v in self._answer.items()}
