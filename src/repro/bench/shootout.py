"""Partitioner shoot-out: every technique, head-to-head, same streams.

The paper compares Prompt against time/shuffle/hash/PKG/CAM; this
module widens the field with the load-feedback rivals (D-Choices,
W-Choices, Fang's repartitioner) and runs everything over one grid:

* a SYND Zipf-exponent sweep (mild → extreme skew),
* the DEBS taxi and tweets replicas,
* the churn and adversarial hot-flip scenario axes.

Two measurement modes per (scenario, technique) cell:

``quality``
    Drive the partitioner directly over consecutive batches — with a
    lag-:data:`~repro.partitioners.feedback.FEEDBACK_LAG` feedback loop
    for the techniques that consume it — and average the partition
    quality metrics (BSI/BCI/KSR/MPI) over the post-warm-up batches.
    Feedback here is size-proportional (block load == block size),
    which is the most favourable signal a load-feedback technique can
    hope for; the engine's own feedback is noisier.

``runtime``
    A full engine run at a fixed offered rate, reporting end-to-end
    latency (mean/p95), sustained throughput, and stability.

The gate helpers at the bottom encode the one claim the benchmark
asserts: on high-skew rows Prompt is Pareto-undominated on
(balance, replication) and wins the joint imbalance score.  Everything
else is reported, not gated — rivals are allowed to win elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..core.batch import BatchInfo
from ..core.metrics import evaluate_partition
from ..engine.cluster import ClusterConfig
from ..engine.engine import EngineConfig, MicroBatchEngine
from ..engine.tasks import TaskCostModel
from ..partitioners.feedback import NULL_FEEDBACK, FeedbackBuffer, WorkerLoadFeedback
from ..partitioners.registry import make_partitioner
from ..queries.wordcount import wordcount_query
from ..workloads.adversarial import hot_key_flip_source
from ..workloads.arrival import ConstantRate
from ..workloads.churn import key_churn_source
from ..workloads.debs_taxi import debs_taxi_source
from ..workloads.source import StreamSource
from ..workloads.synd import synd_source
from ..workloads.tweets import tweets_source

__all__ = [
    "SHOOTOUT_TECHNIQUES",
    "ShootoutScenario",
    "shootout_scenarios",
    "shootout_quality",
    "shootout_runtime",
    "partitioner_shootout",
    "joint_imbalance_score",
    "high_skew_verdicts",
]

#: the shoot-out field, in reporting order
SHOOTOUT_TECHNIQUES: tuple[str, ...] = (
    "hash",
    "pk2",
    "pk5",
    "d-choices",
    "w-choices",
    "fang",
    "prompt",
)

#: SYND exponents for the skew sweep (mild, paper-default, extreme)
SHOOTOUT_EXPONENTS: tuple[float, ...] = (0.6, 1.2, 1.8)


@dataclass(frozen=True, slots=True)
class ShootoutScenario:
    """One workload cell of the shoot-out grid."""

    key: str
    #: Zipf exponent for synthetic rows, None for dataset replicas
    skew: float | None
    build: Callable[[float, int], StreamSource]


def shootout_scenarios(
    *, exponents: Sequence[float] = SHOOTOUT_EXPONENTS, num_keys: int = 4_000
) -> tuple[ShootoutScenario, ...]:
    """The full scenario grid: Zipf sweep + datasets + scenario axes."""
    scenarios = [
        ShootoutScenario(
            key=f"synd-z{z:g}",
            skew=z,
            build=lambda rate, seed, z=z: synd_source(
                z, num_keys=num_keys, arrival=ConstantRate(rate), seed=seed
            ),
        )
        for z in exponents
    ]
    scenarios.append(
        ShootoutScenario(
            key="debs-taxi",
            skew=None,
            build=lambda rate, seed: debs_taxi_source(rate=rate, seed=seed),
        )
    )
    scenarios.append(
        ShootoutScenario(
            key="tweets",
            skew=None,
            build=lambda rate, seed: tweets_source(rate=rate, seed=seed),
        )
    )
    scenarios.append(
        ShootoutScenario(
            key="churn",
            skew=1.2,
            build=lambda rate, seed: key_churn_source(
                rate=rate, num_keys=num_keys, exponent=1.2, seed=seed
            ),
        )
    )
    scenarios.append(
        ShootoutScenario(
            key="hot-flip",
            skew=1.4,
            build=lambda rate, seed: hot_key_flip_source(
                rate=rate, num_keys=num_keys, exponent=1.4, seed=seed
            ),
        )
    )
    return tuple(scenarios)


def _size_proportional_feedback(batch) -> WorkerLoadFeedback:
    """The idealised load signal: each block costs exactly its size."""
    return WorkerLoadFeedback(
        batch_index=batch.info.index,
        block_sizes=tuple(b.size for b in batch.blocks),
        block_cardinalities=tuple(b.cardinality for b in batch.blocks),
        block_loads=tuple(float(b.size) for b in batch.blocks),
        bucket_weights=(),
        bucket_loads=(),
    )


def shootout_quality(
    scenarios: Sequence[ShootoutScenario] | None = None,
    techniques: Sequence[str] = SHOOTOUT_TECHNIQUES,
    *,
    num_blocks: int = 8,
    interval: float = 1.0,
    num_batches: int = 6,
    warmup_batches: int = 2,
    rate: float = 8_000.0,
    seed: int = 11,
) -> list[dict[str, Any]]:
    """Partition-quality rows: post-warm-up means of BSI/BCI/KSR/MPI.

    The warm-up exclusion is deliberate: the adaptive techniques
    (d-/w-choices need a full sketch, fang needs one migration round)
    start as plain hashing, and charging them for that would make the
    comparison trivially favour Prompt.  Steady state is the honest
    contest.
    """
    if scenarios is None:
        scenarios = shootout_scenarios()
    if warmup_batches >= num_batches:
        raise ValueError("need at least one post-warm-up batch")
    rows = []
    for scenario in scenarios:
        for name in techniques:
            part = make_partitioner(name)
            part.reset()
            source = scenario.build(rate, seed)
            feedback = FeedbackBuffer() if part.uses_feedback else NULL_FEEDBACK
            sums = {"BSI": 0.0, "BCI": 0.0, "KSR": 0.0, "MPI": 0.0, "Avg": 0.0}
            measured = 0
            for k in range(num_batches):
                feedback.deliver(part, k)
                tuples = source.tuples_between(k * interval, (k + 1) * interval)
                batch = part.partition(
                    tuples, num_blocks, BatchInfo(k, k * interval, (k + 1) * interval)
                )
                batch.validate(expected_tuples=len(tuples))
                if feedback.enabled:
                    feedback.publish(_size_proportional_feedback(batch))
                if k < warmup_batches:
                    continue
                q = evaluate_partition(batch)
                sums["BSI"] += q.bsi
                sums["BCI"] += q.bci
                sums["KSR"] += q.ksr
                sums["MPI"] += q.mpi
                sums["Avg"] += q.avg_block_size
                measured += 1
            rows.append(
                {
                    "Scenario": scenario.key,
                    "Skew": scenario.skew,
                    "Technique": name,
                    "BSI": sums["BSI"] / measured,
                    "BCI": sums["BCI"] / measured,
                    "KSR": sums["KSR"] / measured,
                    "MPI": sums["MPI"] / measured,
                    "AvgBlockSize": sums["Avg"] / measured,
                    "Batches": measured,
                }
            )
    return rows


def _runtime_config(interval: float, *, cost_scale: float = 1.0) -> EngineConfig:
    base = TaskCostModel()
    cm = TaskCostModel(
        map_fixed=base.map_fixed,
        map_per_tuple=base.map_per_tuple * cost_scale,
        map_per_key=base.map_per_key * cost_scale,
        reduce_fixed=base.reduce_fixed,
        reduce_per_tuple=base.reduce_per_tuple * cost_scale,
        reduce_per_fragment=base.reduce_per_fragment * cost_scale,
    )
    return EngineConfig(
        batch_interval=interval,
        num_blocks=8,
        num_reducers=8,
        cluster=ClusterConfig(num_nodes=4, cores_per_node=4),
        cost_model=cm,
        track_outputs=False,
    )


def shootout_runtime(
    scenarios: Sequence[ShootoutScenario] | None = None,
    techniques: Sequence[str] = SHOOTOUT_TECHNIQUES,
    *,
    interval: float = 1.0,
    num_batches: int = 8,
    rate: float = 8_000.0,
    cost_scale: float = 1.0,
    seed: int = 11,
) -> list[dict[str, Any]]:
    """Runtime rows: latency distribution and throughput at a fixed rate."""
    if scenarios is None:
        scenarios = shootout_scenarios()
    rows = []
    for scenario in scenarios:
        for name in techniques:
            engine = MicroBatchEngine(
                make_partitioner(name),
                wordcount_query(window_length=4 * interval),
                _runtime_config(interval, cost_scale=cost_scale),
            )
            result = engine.run(scenario.build(rate, seed), num_batches)
            rows.append(
                {
                    "Scenario": scenario.key,
                    "Skew": scenario.skew,
                    "Technique": name,
                    "OfferedRate": rate,
                    "LatencyMean": result.stats.mean_latency(),
                    "LatencyP95": result.stats.p95_latency(),
                    "Throughput": result.stats.throughput(),
                    "Stable": result.stable,
                }
            )
    return rows


def partitioner_shootout(
    *,
    techniques: Sequence[str] = SHOOTOUT_TECHNIQUES,
    exponents: Sequence[float] = SHOOTOUT_EXPONENTS,
    num_keys: int = 4_000,
    rate: float = 8_000.0,
    num_batches: int = 6,
    runtime_batches: int = 8,
    cost_scale: float = 1.0,
    seed: int = 11,
) -> dict[str, Any]:
    """The full shoot-out: quality grid plus runtime grid, one payload."""
    scenarios = shootout_scenarios(exponents=exponents, num_keys=num_keys)
    return {
        "techniques": list(techniques),
        "scenarios": [s.key for s in scenarios],
        "quality": shootout_quality(
            scenarios, techniques, rate=rate, num_batches=num_batches, seed=seed
        ),
        "runtime": shootout_runtime(
            scenarios,
            techniques,
            rate=rate,
            num_batches=runtime_batches,
            cost_scale=cost_scale,
            seed=seed,
        ),
    }


# ----------------------------------------------------------------------
# Gate: the one claim the benchmark asserts
# ----------------------------------------------------------------------
def joint_imbalance_score(row: dict[str, Any]) -> float:
    """Scale-free balance + replication score (lower is better).

    BSI is normalised by the mean block size so the balance term is a
    fraction of a block, commensurable with the replication excess
    (KSR - 1).  A technique only wins jointly if it is good at *both*.
    """
    avg = max(row["AvgBlockSize"], 1e-9)
    return row["BSI"] / avg + (row["KSR"] - 1.0)


def _dominates(a: dict[str, Any], b: dict[str, Any]) -> bool:
    """True when ``a`` Pareto-dominates ``b`` on (normalised BSI, KSR)."""
    a_bsi = a["BSI"] / max(a["AvgBlockSize"], 1e-9)
    b_bsi = b["BSI"] / max(b["AvgBlockSize"], 1e-9)
    return (
        a_bsi <= b_bsi
        and a["KSR"] <= b["KSR"]
        and (a_bsi < b_bsi or a["KSR"] < b["KSR"])
    )


def high_skew_verdicts(
    quality_rows: Sequence[dict[str, Any]],
    *,
    min_skew: float = 1.4,
    target: str = "prompt",
) -> list[dict[str, Any]]:
    """Per-high-skew-scenario verdicts on the joint-win claim.

    For every scenario with ``Skew >= min_skew``: the target must (a)
    have the minimal :func:`joint_imbalance_score` and (b) not be
    Pareto-dominated on (normalised BSI, KSR) by any rival.
    """
    by_scenario: dict[str, list[dict[str, Any]]] = {}
    for row in quality_rows:
        if row["Skew"] is not None and row["Skew"] >= min_skew:
            by_scenario.setdefault(row["Scenario"], []).append(row)
    verdicts = []
    for scenario, rows in sorted(by_scenario.items()):
        target_row = next(r for r in rows if r["Technique"] == target)
        rivals = [r for r in rows if r["Technique"] != target]
        target_score = joint_imbalance_score(target_row)
        best_rival = min(rivals, key=joint_imbalance_score)
        dominated_by = [
            r["Technique"] for r in rivals if _dominates(r, target_row)
        ]
        verdicts.append(
            {
                "Scenario": scenario,
                "TargetScore": target_score,
                "BestRival": best_rival["Technique"],
                "BestRivalScore": joint_imbalance_score(best_rival),
                "JointWin": target_score <= joint_imbalance_score(best_rival),
                "DominatedBy": dominated_by,
            }
        )
    return verdicts
