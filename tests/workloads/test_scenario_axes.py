"""The churn and adversarial hot-flip scenario axes."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.workloads import (
    HotKeyFlipSource,
    KeyChurnSource,
    hot_key_flip_source,
    key_churn_source,
)

AXES = [
    ("churn", lambda: key_churn_source(rate=2_000.0, seed=1)),
    ("hot-flip", lambda: hot_key_flip_source(rate=2_000.0, seed=1)),
]


@pytest.mark.parametrize("name,factory", AXES)
def test_axes_emit_sorted_in_interval(name, factory):
    source = factory()
    tuples = source.tuples_between(1.0, 2.0)
    assert len(tuples) == 2_000
    assert all(1.0 <= t.ts < 2.0 for t in tuples)
    assert [t.ts for t in tuples] == sorted(t.ts for t in tuples)


@pytest.mark.parametrize("name,factory", AXES)
def test_axes_are_deterministic_and_resettable(name, factory):
    source = factory()
    first = source.tuples_between(0.0, 1.5)
    source.reset()
    replay = source.tuples_between(0.0, 1.5)
    assert [t.key for t in first] == [t.key for t in replay]


@pytest.mark.parametrize("name,factory", AXES)
def test_axes_expose_properties(name, factory):
    source = factory()
    props = source.properties()
    assert props is not None
    assert props.scaled_cardinality > 0
    assert source.num_keys > 0
    assert source.exponent > 0


class TestKeyChurn:
    def test_vocabulary_drifts_between_epochs(self):
        source = key_churn_source(
            rate=4_000.0, num_keys=500, churn_interval=1.0, drift_keys=100, seed=3
        )
        epoch0 = {t.key for t in source.tuples_between(0.0, 1.0)}
        epoch3 = {t.key for t in source.tuples_between(3.0, 4.0)}
        # 100 of 500 identities retire per epoch: 3 epochs shift the
        # window by 300 keys, so overlap is the surviving 200-key band
        assert epoch0 != epoch3
        retired = epoch0 - epoch3
        entered = epoch3 - epoch0
        assert retired and entered

    def test_instant_vocabulary_stays_bounded(self):
        source = key_churn_source(rate=4_000.0, num_keys=300, seed=5)
        for k in range(4):
            keys = {t.key for t in source.tuples_between(float(k), float(k + 1))}
            # one interval spans at most two epochs of the same window
            assert len(keys) <= 300 + source.drift_keys

    def test_default_drift_is_ten_percent(self):
        assert key_churn_source(num_keys=2_000).drift_keys == 200

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            key_churn_source(churn_interval=0.0)
        with pytest.raises(ValueError):
            KeyChurnSource(
                arrival=None, num_keys=10, exponent=1.0,
                churn_interval=1.0, drift_keys=0,
            )


class TestHotKeyFlip:
    def test_hot_identities_move_between_phases(self):
        source = hot_key_flip_source(
            rate=6_000.0, num_keys=200, exponent=1.6,
            flip_interval=0.5, hot_ranks=3, seed=7,
        )
        top0 = {k for k, _ in Counter(
            t.key for t in source.tuples_between(0.0, 0.5)
        ).most_common(3)}
        top1 = {k for k, _ in Counter(
            t.key for t in source.tuples_between(0.5, 1.0)
        ).most_common(3)}
        assert top0.isdisjoint(top1)

    def test_identity_map_is_a_permutation_every_phase(self):
        source = hot_key_flip_source(num_keys=150, hot_ranks=4, seed=2)
        for phase in range(12):
            images = {source._identity(r, phase) for r in range(150)}
            assert images == set(range(150))

    def test_flips_land_mid_window_by_default(self):
        source = hot_key_flip_source(rate=4_000.0, seed=1)
        assert 0.0 < source.flip_interval < 1.0  # inside a 1s batch

    def test_total_mass_is_flip_invariant(self):
        """The flip permutes identities, it must not change the skew."""
        source = hot_key_flip_source(
            rate=6_000.0, num_keys=200, exponent=1.4, flip_interval=0.5, seed=9
        )
        c0 = Counter(t.key for t in source.tuples_between(0.0, 0.5))
        c1 = Counter(t.key for t in source.tuples_between(0.5, 1.0))
        shape0 = sorted(c0.values(), reverse=True)
        shape1 = sorted(c1.values(), reverse=True)
        # same arrival process, same sampler: identical counts, new names
        assert sum(shape0) == sum(shape1)
        assert abs(shape0[0] - shape1[0]) < 0.25 * shape0[0]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            hot_key_flip_source(flip_interval=0.0)
        with pytest.raises(ValueError):
            hot_key_flip_source(hot_ranks=0)
        with pytest.raises(ValueError):
            hot_key_flip_source(num_keys=8, hot_ranks=4)
