"""Experiment matrix: grids, the resumable fill runner, trend reports."""

from __future__ import annotations

import pytest

from repro.bench.matrix import (
    FULL_GRID,
    GRIDS,
    MatrixCell,
    QUICK_GRID,
    TINY_GRID,
    fill,
    render_matrix_report,
    run_cell,
    trajectory_rows,
)
from repro.bench.store import ResultsStore, environment_hash

ENV = {"cpu_count": 4, "python": "3.11", "numpy": False}


# ----------------------------------------------------------------------
# grid declaration
def test_grid_sizes():
    assert len(TINY_GRID) == 1
    # 16 single-engine (serial+parallel) + 4 sharded (s2, d1) + 4 streamed
    assert len(QUICK_GRID) == 24
    # 72 single-engine + 24 sharded (s2/s4) + 8 streamed (prompt/parallel)
    assert len(FULL_GRID) == 104
    assert set(GRIDS) == {"tiny", "quick", "full"}


def test_grid_prunes_faulted_serial_cells():
    for cell in FULL_GRID.cells():
        if cell.fault_profile != "none":
            assert cell.backend == "parallel"


def test_grid_prunes_sharded_cells_to_the_clean_serial_path():
    sharded = [c for c in FULL_GRID.cells() if c.shards]
    assert sharded, "full grid lost its sharded cells"
    for cell in sharded:
        assert cell.backend == "serial"
        assert cell.pipeline_depth == 1
        assert cell.fault_profile == "none"


def test_shards_axis_preserves_legacy_config_hashes():
    """shards=0 must hash identically to a pre-axis cell (omitted key)."""
    from repro.bench.store import config_hash

    cell = MatrixCell("synd-z1.4", "hash")
    assert cell.shards == 0
    assert "shards" not in cell.params()
    legacy = config_hash(
        {
            "workload": "synd-z1.4",
            "partitioner": "hash",
            "backend": "serial",
            "ingest_kernel": "default",
            "pipeline_depth": 1,
            "fault_profile": "none",
        }
    )
    assert cell.config_hash == legacy
    assert MatrixCell("synd-z1.4", "hash", shards=2).config_hash != legacy


def test_streaming_axis_preserves_legacy_config_hashes():
    """streaming_dispatch=False must hash identically to a pre-axis cell."""
    eager = MatrixCell("synd-z1.4", "prompt", backend="parallel")
    streamed = MatrixCell(
        "synd-z1.4", "prompt", backend="parallel", streaming_dispatch=True
    )
    assert "streaming_dispatch" not in eager.params()
    assert streamed.params()["streaming_dispatch"] is True
    assert eager.config_hash != streamed.config_hash
    assert streamed.label().endswith("/stream")


def test_grid_prunes_streamed_cells_to_parallel_prompt():
    streamed = [c for c in QUICK_GRID.cells() if c.streaming_dispatch]
    assert streamed, "quick grid lost its streamed cells"
    for cell in streamed:
        assert cell.backend == "parallel"
        assert cell.partitioner == "prompt"
        assert cell.fault_profile == "none"
        assert cell.shards == 0


def test_cell_hash_stable_and_label():
    cell = MatrixCell(workload="tweets", partitioner="prompt", pipeline_depth=2)
    again = MatrixCell(workload="tweets", partitioner="prompt", pipeline_depth=2)
    assert cell.config_hash == again.config_hash
    assert cell.label() == "tweets/prompt/serial/default/d2/none"


def test_grid_hashes_are_unique():
    hashes = [c.config_hash for c in FULL_GRID.cells()]
    assert len(hashes) == len(set(hashes))


# ----------------------------------------------------------------------
# resumable fill (the acceptance criterion: second run executes zero)
def _counting_runner(executed):
    def runner(cell, grid):
        executed.append(cell.label())
        return {"latency_mean_seconds": 0.1, "stable": 1.0}, {"obs.k": 1}

    return runner


def test_fill_twice_executes_zero_cells_second_time(tmp_path):
    executed: list[str] = []
    with ResultsStore(tmp_path / "r.db") as store:
        first = fill(
            store, QUICK_GRID, git_sha="sha-1", env=ENV,
            runner=_counting_runner(executed),
        )
        assert len(first.executed) == len(QUICK_GRID) == len(executed)
        assert first.skipped == 0

        second = fill(
            store, QUICK_GRID, git_sha="sha-1", env=ENV,
            runner=_counting_runner(executed),
        )
        assert second.executed == []
        assert second.skipped == len(QUICK_GRID)
        assert len(executed) == len(QUICK_GRID)  # nothing ran again


def test_new_sha_invalidates_and_refills(tmp_path):
    executed: list[str] = []
    with ResultsStore(tmp_path / "r.db") as store:
        fill(store, TINY_GRID, git_sha="sha-1", env=ENV,
             runner=_counting_runner(executed))
        fill(store, TINY_GRID, git_sha="sha-2", env=ENV,
             runner=_counting_runner(executed))
        assert len(executed) == 2  # one run per SHA: the trajectory grows
        cell = TINY_GRID.cells()[0]
        hist = store.history(cell.config_hash, "latency_mean_seconds")
        assert [h["git_sha"] for h in hist] == ["sha-1", "sha-2"]


def test_force_reruns_completed_cells(tmp_path):
    executed: list[str] = []
    with ResultsStore(tmp_path / "r.db") as store:
        fill(store, TINY_GRID, git_sha="sha-1", env=ENV,
             runner=_counting_runner(executed))
        fill(store, TINY_GRID, git_sha="sha-1", env=ENV, force=True,
             runner=_counting_runner(executed))
        assert len(executed) == 2
        assert store.cell_count() == 2  # appended, never overwritten


def test_fill_reports_progress(tmp_path):
    seen: list[str] = []
    with ResultsStore(tmp_path / "r.db") as store:
        fill(store, TINY_GRID, git_sha="sha-1", env=ENV,
             runner=_counting_runner([]), progress=lambda c: seen.append(c.label()))
    assert seen == [TINY_GRID.cells()[0].label()]


# ----------------------------------------------------------------------
# a real engine run through one tiny cell
def test_run_cell_real_engine_records_everything(tmp_path):
    with ResultsStore(tmp_path / "r.db") as store:
        report = fill(store, TINY_GRID, git_sha="sha-real")
        assert len(report.executed) == 1
        row = store.cells()[0]
        assert row["git_sha"] == "sha-real"
        # environment fingerprint rode along
        assert row["env"]["cpu_count"] >= 1
        assert "python" in row["env"]
        # observability was forced on: the obs snapshot is non-empty
        assert row["obs"], "matrix cells must carry an obs snapshot"
        metrics = store.metrics_for(row["id"])
        assert metrics["total_tuples"] > 0
        assert metrics["throughput_tuples_per_sec"] > 0
        assert "latency_p95_seconds" in metrics


def test_run_cell_fault_profile_injects_retry():
    cell = MatrixCell(
        workload="synd-z1.4", partitioner="hash", backend="parallel",
        fault_profile="map-crash",
    )
    metrics, obs = run_cell(cell, TINY_GRID)
    assert metrics["task_retries"] >= 1
    assert metrics["stable"] in (0.0, 1.0)


# ----------------------------------------------------------------------
# trend reporting
def _varying_runner(value):
    return lambda cell, grid: ({"latency_mean_seconds": value}, {})


def test_trajectory_rows_and_report(tmp_path):
    with ResultsStore(tmp_path / "r.db") as store:
        for i, sha in enumerate(["sha-1", "sha-2", "sha-3"]):
            fill(store, TINY_GRID, git_sha=sha, env=ENV,
                 runner=_varying_runner(1.0 + i))
        rows = trajectory_rows(store)
        assert len(rows) == 1
        row = rows[0]
        assert row["Runs"] == 3
        assert row["First"] == 1.0 and row["Last"] == 3.0
        assert row["DeltaPct"] == pytest.approx(200.0)
        assert len(row["Trend"]) == 3

        text = render_matrix_report(store)
        assert "latency_mean_seconds" in text
        md = render_matrix_report(store, markdown=True)
        assert md.startswith("### ")
        assert "| Cell |" in md.splitlines()[2]


def test_trajectory_rows_metric_filter(tmp_path):
    with ResultsStore(tmp_path / "r.db") as store:
        fill(store, TINY_GRID, git_sha="s", env=ENV,
             runner=lambda c, g: ({"a": 1.0, "b": 2.0}, {}))
        rows = trajectory_rows(store, metrics=("a",))
        assert [r["Metric"] for r in rows] == ["a"]


def test_trajectory_rows_env_filter(tmp_path):
    other = {"cpu_count": 64, "python": "3.12", "numpy": True}
    with ResultsStore(tmp_path / "r.db") as store:
        fill(store, TINY_GRID, git_sha="s1", env=ENV,
             runner=_varying_runner(1.0))
        fill(store, TINY_GRID, git_sha="s1", env=other,
             runner=_varying_runner(50.0))
        rows = trajectory_rows(store, env_hash=environment_hash(ENV))
        assert len(rows) == 1
        assert rows[0]["Last"] == 1.0


def test_render_report_empty_store(tmp_path):
    with ResultsStore(tmp_path / "r.db") as store:
        assert "(no rows)" in render_matrix_report(store)
        assert "_empty store_" in render_matrix_report(store, markdown=True)
