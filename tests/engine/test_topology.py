"""Topology: placement, locality, and the network shuffle term."""

from __future__ import annotations

import pytest

from repro.core.batch import BatchInfo
from repro.engine.cluster import ClusterConfig
from repro.engine.engine import EngineConfig, MicroBatchEngine
from repro.engine.tasks import TaskCostModel, execute_batch_tasks
from repro.engine.topology import Topology
from repro.partitioners import ShufflePartitioner, make_partitioner
from repro.queries import wordcount_query
from repro.queries.base import Query, SumAggregator
from repro.workloads.arrival import ConstantRate
from repro.workloads.synd import synd_source

from ..conftest import make_tuples, zipfish_freqs

INFO = BatchInfo(0, 0.0, 1.0)


def test_round_robin_placement():
    topo = Topology(ClusterConfig(num_nodes=4, cores_per_node=4))
    assert [topo.node_of_block(i) for i in range(6)] == [0, 1, 2, 3, 0, 1]
    assert topo.node_of_reducer(5) == 1
    assert topo.is_local(0, 4)       # both on node 0
    assert not topo.is_local(0, 1)


def test_placement_validation():
    topo = Topology(ClusterConfig(num_nodes=2, cores_per_node=2))
    with pytest.raises(ValueError):
        topo.node_of_block(-1)
    with pytest.raises(ValueError):
        topo.node_of_reducer(-1)
    with pytest.raises(ValueError):
        topo.remote_fraction(0, 4)


def test_remote_fraction_approaches_all_to_all_floor():
    topo = Topology(ClusterConfig(num_nodes=4, cores_per_node=4))
    assert topo.remote_fraction(16, 16) == pytest.approx(0.75)
    single = Topology(ClusterConfig(num_nodes=1, cores_per_node=4))
    assert single.remote_fraction(8, 8) == 0.0


def test_network_term_counts_remote_fragments():
    tuples = make_tuples(zipfish_freqs(30, 600), shuffle_seed=2)
    part = ShufflePartitioner()
    batch = part.partition(tuples, 4, INFO)
    topo = Topology(ClusterConfig(num_nodes=2, cores_per_node=2))
    query = Query(name="sum", aggregator=SumAggregator(), map_fn=lambda k, v: 1)
    base = execute_batch_tasks(batch, query, part, 4, TaskCostModel())
    priced = execute_batch_tasks(
        batch,
        query,
        part,
        4,
        TaskCostModel(network_per_remote_fragment=1e-3),
        topology=topo,
    )
    total_fragments = sum(r.fragment_count for r in priced.reduce_results)
    total_remote = sum(r.remote_fragments for r in priced.reduce_results)
    assert 0 < total_remote < total_fragments
    # the network term strictly lengthens affected reduce tasks
    for b, p in zip(base.reduce_results, priced.reduce_results):
        assert p.duration == pytest.approx(b.duration + 1e-3 * p.remote_fragments)


def test_without_topology_no_remote_fragments():
    tuples = make_tuples({"a": 10, "b": 5}, shuffle_seed=1)
    part = ShufflePartitioner()
    batch = part.partition(tuples, 4, INFO)
    query = Query(name="sum", aggregator=SumAggregator(), map_fn=lambda k, v: 1)
    execution = execute_batch_tasks(batch, query, part, 4, TaskCostModel())
    assert all(r.remote_fragments == 0 for r in execution.reduce_results)


def test_engine_topology_flag_slows_scattering_techniques_more():
    """With network costs on, shuffle (many fragments) pays more than hash."""
    cost = TaskCostModel(network_per_remote_fragment=2e-4)
    config = EngineConfig(
        batch_interval=1.0,
        num_blocks=4,
        num_reducers=4,
        cluster=ClusterConfig(num_nodes=4, cores_per_node=2),
        cost_model=cost,
        use_topology=True,
        track_outputs=False,
    )

    def mean_processing(technique):
        engine = MicroBatchEngine(
            make_partitioner(technique), wordcount_query(), config
        )
        source = synd_source(0.6, num_keys=400, arrival=ConstantRate(2_000.0), seed=7)
        result = engine.run(source, 4)
        records = result.stats.records
        return sum(r.processing_time for r in records) / len(records)

    def run_without(technique):
        cfg2 = EngineConfig(
            batch_interval=1.0, num_blocks=4, num_reducers=4,
            cluster=ClusterConfig(num_nodes=4, cores_per_node=2),
            cost_model=cost, use_topology=False, track_outputs=False,
        )
        engine = MicroBatchEngine(make_partitioner(technique), wordcount_query(), cfg2)
        source = synd_source(0.6, num_keys=400, arrival=ConstantRate(2_000.0), seed=7)
        result = engine.run(source, 4)
        records = result.stats.records
        return sum(r.processing_time for r in records) / len(records)

    shuffle_delta = mean_processing("shuffle") - run_without("shuffle")
    hash_delta = mean_processing("hash") - run_without("hash")
    # Hashing is co-partitioned under round-robin placement (the same
    # hash drives block and bucket, so block i feeds reducer i on the
    # same node): zero remote fetches.  Shuffle scatters and pays.
    assert shuffle_delta > hash_delta >= 0
