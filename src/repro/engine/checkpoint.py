"""Driver checkpointing: snapshot and restore the windowed query state.

The paper's fault model (Section 8) covers *executor* failures — a lost
batch state is recomputed from its replicated input.  A production
micro-batch system also survives *driver* restarts by checkpointing the
query's windowed state (Spark Streaming checkpoints DStream metadata
and state the same way).  This module adds that layer to the simulator:

- :meth:`WindowedAggregator.snapshot` equivalents are provided here as
  free functions so the aggregator stays checkpoint-agnostic;
- :class:`CheckpointManager` persists snapshots to disk and restores a
  fresh engine's window/state to continue *exactly-once*: replaying the
  remaining batches after a restore yields answers identical to an
  uninterrupted run (asserted by the tests).

Snapshots are serialized with :mod:`pickle`; they are a crash-recovery
artifact written and read by the same trusted process, never a wire
format for untrusted data.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..core.tuples import Key
from .state import StateStore
from .windows import WindowedAggregator

__all__ = ["WindowSnapshot", "CheckpointManager", "snapshot_window", "restore_window"]


@dataclass(frozen=True)
class WindowSnapshot:
    """A consistent point-in-time image of the driver's query state."""

    next_batch_index: int
    batches_per_window: int
    cached_outputs: tuple[Mapping[Key, Any], ...]
    answer: Mapping[Key, Any]

    def __post_init__(self) -> None:
        if self.next_batch_index < 0:
            raise ValueError("next_batch_index must be >= 0")
        if len(self.cached_outputs) > self.batches_per_window:
            raise ValueError("snapshot holds more batches than the window spans")


def snapshot_window(
    windows: WindowedAggregator, next_batch_index: int
) -> WindowSnapshot:
    """Capture a window's in-flight batches and merged answer."""
    return WindowSnapshot(
        next_batch_index=next_batch_index,
        batches_per_window=windows.batches_per_window,
        cached_outputs=tuple(dict(b) for b in windows._cached),
        answer=dict(windows._answer),
    )


def restore_window(
    windows: WindowedAggregator, snapshot: WindowSnapshot
) -> WindowedAggregator:
    """Load a snapshot into a (fresh) aggregator of the same shape."""
    if windows.batches_per_window != snapshot.batches_per_window:
        raise ValueError(
            f"window spans {windows.batches_per_window} batches but the "
            f"snapshot was taken at {snapshot.batches_per_window}"
        )
    if len(windows) != 0:
        raise ValueError("restore target must be a fresh aggregator")
    windows._cached.extend(dict(b) for b in snapshot.cached_outputs)
    windows._answer.update(snapshot.answer)
    return windows


class CheckpointManager:
    """Persists :class:`WindowSnapshot` images to a directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, batch_index: int) -> Path:
        return self.directory / f"checkpoint-{batch_index:08d}.pkl"

    def save(self, snapshot: WindowSnapshot) -> Path:
        """Write atomically (tmp + rename) and return the file path."""
        path = self.path_for(snapshot.next_batch_index)
        tmp = path.with_suffix(".tmp")
        with tmp.open("wb") as fh:
            pickle.dump(snapshot, fh, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)
        return path

    def load(self, batch_index: int) -> WindowSnapshot:
        path = self.path_for(batch_index)
        with path.open("rb") as fh:
            snapshot = pickle.load(fh)
        if not isinstance(snapshot, WindowSnapshot):
            raise TypeError(f"{path} does not contain a WindowSnapshot")
        return snapshot

    def latest(self) -> WindowSnapshot | None:
        """The most recent checkpoint in the directory, if any."""
        candidates = sorted(self.directory.glob("checkpoint-*.pkl"))
        if not candidates:
            return None
        with candidates[-1].open("rb") as fh:
            snapshot = pickle.load(fh)
        if not isinstance(snapshot, WindowSnapshot):
            raise TypeError(f"{candidates[-1]} does not contain a WindowSnapshot")
        return snapshot

    def prune(self, keep: int = 2) -> int:
        """Delete all but the ``keep`` newest checkpoints; return count."""
        if keep < 1:
            raise ValueError("keep must be >= 1")
        candidates = sorted(self.directory.glob("checkpoint-*.pkl"))
        victims = candidates[:-keep]
        for path in victims:
            path.unlink()
        return len(victims)
