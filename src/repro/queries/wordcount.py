"""WordCount: sliding-window word counting (Section 7.1).

"WordCount performs a sliding window count over 30 seconds" — each
tuple is one word occurrence (the word is the partitioning key), the
Map stage emits ``(word, 1)`` and the Reduce stage sums.
"""

from __future__ import annotations

from typing import Any

from ..core.tuples import Key
from .base import CountAggregator, Query, WindowSpec

__all__ = ["wordcount_query", "count_one"]


def count_one(key: Key, value: Any) -> int:
    """Map every occurrence to 1 (module-level so queries stay picklable:
    parallel execution backends ship the query to worker processes)."""
    return 1


def wordcount_query(
    window_length: float = 30.0, slide: float | None = None
) -> Query:
    """Build the WordCount query.

    ``slide`` defaults to the window length's natural micro-batch pace;
    the engine slides the window one batch at a time regardless, so the
    spec mostly documents intent.
    """
    return Query(
        name="wordcount",
        aggregator=CountAggregator(),
        window=WindowSpec(length=window_length, slide=slide or window_length / 10),
        map_fn=count_one,
    )
