"""Observability wired through the engine: span trees, metrics, exports.

The determinism-facing cases live here: two traced same-seed runs must
produce *identical span trees* (names/parentage/counts — wall-clock and
pids excluded by construction of ``tree_signature``), and a traced run's
answers must be byte-identical to an untraced one.
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine.engine import EngineConfig, MicroBatchEngine
from repro.obs import ObservabilityConfig, parse_prometheus, read_chrome_trace
from repro.partitioners import make_partitioner
from repro.queries import wordcount_query
from repro.workloads import ConstantRate, synd_source

NUM_BATCHES = 3


def _run(executor="serial", obs=ObservabilityConfig(), **cfg_overrides):
    cfg_kwargs = dict(
        batch_interval=1.0,
        num_blocks=3,
        num_reducers=3,
        executor=executor,
        executor_workers=2,
        run_seed=13,
        observability=obs,
    )
    cfg_kwargs.update(cfg_overrides)
    engine = MicroBatchEngine(
        make_partitioner("prompt"),
        wordcount_query(window_length=2.0),
        EngineConfig(**cfg_kwargs),
    )
    source = synd_source(1.0, num_keys=200, arrival=ConstantRate(900.0), seed=3)
    return engine.run(source, NUM_BATCHES)


def test_run_produces_expected_span_tree():
    result = _run()
    tracer = result.observability.tracer
    spans = {s.span_id: s for s in tracer.spans}
    by_name: dict[str, list] = {}
    for s in tracer.spans:
        by_name.setdefault(s.name, []).append(s)

    assert len(by_name["run"]) == 1
    run_span = by_name["run"][0]
    assert run_span.parent_id is None
    assert run_span.attrs["partitioner"] == "prompt"

    assert len(by_name["batch"]) == NUM_BATCHES
    for batch in by_name["batch"]:
        assert batch.parent_id == run_span.span_id

    batch_ids = {b.span_id for b in by_name["batch"]}
    for phase in ("buffer", "partition", "window_merge", "shuffle"):
        assert len(by_name[phase]) == NUM_BATCHES
        for s in by_name[phase]:
            assert s.parent_id in batch_ids, phase
    for kind in ("map_task", "reduce_task"):
        assert len(by_name[kind]) == NUM_BATCHES * 3
        for s in by_name[kind]:
            assert s.parent_id in batch_ids
            assert {"task_id", "batch", "attempt"} <= s.attrs.keys()
            assert spans[s.parent_id].attrs["index"] == s.attrs["batch"]


def test_same_seed_runs_produce_identical_span_trees():
    a = _run()
    b = _run()
    sig_a = a.observability.tracer.tree_signature()
    sig_b = b.observability.tracer.tree_signature()
    assert sig_a == sig_b
    assert sig_a  # non-empty


@pytest.mark.parametrize("executor", ["serial", "parallel"])
def test_traced_run_matches_untraced_run(executor):
    traced = _run(executor=executor)
    untraced = _run(executor=executor, obs=None)
    assert pickle.dumps(traced.window_answers) == pickle.dumps(
        untraced.window_answers
    )
    assert traced.stats.records == untraced.stats.records
    assert untraced.observability is not None
    assert not untraced.observability.enabled
    assert len(untraced.observability.tracer) == 0


def test_parallel_task_spans_carry_worker_pids():
    result = _run(executor="parallel")
    tracer = result.observability.tracer
    import os

    driver = os.getpid()
    task_pids = {
        s.pid for s in tracer.spans if s.name in ("map_task", "reduce_task")
    }
    assert task_pids, "no stitched task spans"
    assert driver not in task_pids


def test_engine_metrics_catalog():
    result = _run()
    snap = result.observability.metrics.as_dict()
    assert snap["prompt_batches_total"] == NUM_BATCHES
    assert snap["prompt_tuples_total"] > 0
    assert snap["prompt_batch_latency_seconds"]["count"] == NUM_BATCHES
    assert snap["prompt_partition_plan_seconds"]["count"] == NUM_BATCHES
    assert snap["prompt_partition_buffer_seconds"]["count"] == NUM_BATCHES
    assert snap["prompt_tree_updates_total"] > 0
    assert snap["prompt_partition_bsi{technique=prompt}"] >= 0.0
    assert snap["prompt_partition_bci{technique=prompt}"] >= 0.0
    assert snap["prompt_partition_ksr{technique=prompt}"] > 0.0
    # fault counters register at zero on a clean run
    assert snap["prompt_task_retries_total"] == 0.0
    assert snap["prompt_pool_resurrections_total"] == 0.0


def test_flush_writes_all_configured_exports(tmp_path):
    obs_cfg = ObservabilityConfig(
        trace_path=str(tmp_path / "t.json"),
        metrics_path=str(tmp_path / "m.prom"),
        jsonl_path=str(tmp_path / "run.jsonl"),
    )
    _run(obs=obs_cfg)
    events = read_chrome_trace(tmp_path / "t.json")
    assert {e["name"] for e in events} >= {"run", "batch", "map_task"}
    samples = parse_prometheus((tmp_path / "m.prom").read_text())
    assert samples["prompt_batches_total"] == NUM_BATCHES
    assert (tmp_path / "run.jsonl").stat().st_size > 0


def test_observability_disabled_flag(tmp_path):
    obs_cfg = ObservabilityConfig(enabled=False, trace_path=str(tmp_path / "t.json"))
    result = _run(obs=obs_cfg)
    assert not result.observability.enabled
    assert not (tmp_path / "t.json").exists()
