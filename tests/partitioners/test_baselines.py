"""Per-technique semantics of the baseline partitioners (Section 2.2)."""

from __future__ import annotations

import pytest

from repro.core.batch import BatchInfo
from repro.core.hashing import candidate_buckets, hash_to_bucket
from repro.core.metrics import evaluate_partition
from repro.core.tuples import StreamTuple
from repro.partitioners import (
    CAMPartitioner,
    HashPartitioner,
    KeySplitPartitioner,
    PK2Partitioner,
    PK5Partitioner,
    ShufflePartitioner,
    TimeBasedPartitioner,
)

from ..conftest import make_tuples, zipfish_freqs

INFO = BatchInfo(0, 0.0, 1.0)


# ----------------------------------------------------------------------
# time-based
# ----------------------------------------------------------------------
def test_time_based_assigns_by_block_interval():
    part = TimeBasedPartitioner()
    tuples = [StreamTuple(ts=t, key="k") for t in (0.05, 0.30, 0.55, 0.80)]
    batch = part.partition(tuples, 4, INFO)
    for i, block in enumerate(batch.blocks):
        assert block.tuple_count() == 1, f"block {i}"


def test_time_based_clamps_out_of_range_timestamps():
    part = TimeBasedPartitioner()
    tuples = [StreamTuple(ts=-0.5, key="a"), StreamTuple(ts=1.5, key="b")]
    batch = part.partition(tuples, 4, INFO)
    assert batch.blocks[0].tuple_count() == 1
    assert batch.blocks[3].tuple_count() == 1


def test_time_based_tracks_rate_bursts():
    """A burst inside one block interval lands in one block — the flaw."""
    part = TimeBasedPartitioner()
    tuples = [StreamTuple(ts=0.9 + i * 0.0001, key=f"k{i}") for i in range(100)]
    tuples += [StreamTuple(ts=0.1, key="lone")]
    batch = part.partition(tuples, 4, INFO)
    sizes = sorted(b.size for b in batch.blocks)
    assert sizes == [0, 0, 1, 100]


# ----------------------------------------------------------------------
# shuffle
# ----------------------------------------------------------------------
def test_shuffle_round_robin_equalizes_sizes():
    part = ShufflePartitioner()
    tuples = make_tuples(zipfish_freqs(20, 500), shuffle_seed=3)
    batch = part.partition(tuples, 4, INFO)
    sizes = [b.size for b in batch.blocks]
    assert max(sizes) - min(sizes) <= 1


def test_shuffle_scatters_keys():
    part = ShufflePartitioner()
    tuples = [StreamTuple(ts=i * 0.01, key="hot") for i in range(8)]
    batch = part.partition(tuples, 4, INFO)
    assert len(batch.split_keys["hot"]) == 4


def test_shuffle_assignment_follows_arrival_order():
    part = ShufflePartitioner()
    tuples = [StreamTuple(ts=i * 0.01, key=f"k{i}") for i in range(6)]
    batch = part.partition(tuples, 3, INFO)
    assert "k0" in batch.blocks[0]
    assert "k1" in batch.blocks[1]
    assert "k2" in batch.blocks[2]
    assert "k3" in batch.blocks[0]


# ----------------------------------------------------------------------
# hashing
# ----------------------------------------------------------------------
def test_hash_partitioner_guarantees_key_locality():
    part = HashPartitioner()
    tuples = make_tuples(zipfish_freqs(30, 400), shuffle_seed=5)
    batch = part.partition(tuples, 4, INFO)
    assert batch.split_keys == {}
    assert evaluate_partition(batch).ksr == 1.0


def test_hash_partitioner_matches_hash_function():
    part = HashPartitioner(seed=2)
    tuples = [StreamTuple(ts=0.0, key=f"k{i}") for i in range(20)]
    batch = part.partition(tuples, 8, INFO)
    for t in tuples:
        expected = hash_to_bucket(t.key, 8, seed=2)
        assert t.key in batch.blocks[expected]


def test_hash_partitioner_skews_with_hot_keys():
    part = HashPartitioner()
    tuples = [StreamTuple(ts=i * 1e-4, key="hot") for i in range(100)]
    tuples += [StreamTuple(ts=0.5 + i * 1e-4, key=f"k{i}") for i in range(20)]
    batch = part.partition(tuples, 4, INFO)
    assert evaluate_partition(batch).bsi > 50


# ----------------------------------------------------------------------
# key splitting (PK2 / PK5)
# ----------------------------------------------------------------------
def test_pk_candidates_limit_key_spread():
    part = PK2Partitioner()
    tuples = [StreamTuple(ts=i * 1e-4, key="hot") for i in range(200)]
    batch = part.partition(tuples, 8, INFO)
    spread = batch.split_keys.get("hot", ("x",))
    assert len(spread) <= 2
    assert set(spread) <= set(candidate_buckets("hot", 8, 2))


def test_pk5_spreads_wider_than_pk2():
    tuples = [StreamTuple(ts=i * 1e-4, key="hot") for i in range(500)]
    b2 = PK2Partitioner().partition(tuples, 16, INFO)
    b5 = PK5Partitioner().partition(tuples, 16, INFO)
    spread2 = len(b2.split_keys.get("hot", (0,)))
    spread5 = len(b5.split_keys.get("hot", (0,)))
    assert spread5 >= spread2


def test_pk_balances_better_than_hash_under_skew():
    tuples = make_tuples(zipfish_freqs(40, 2000), shuffle_seed=9)
    hash_q = evaluate_partition(HashPartitioner().partition(tuples, 8, INFO))
    pk5_q = evaluate_partition(PK5Partitioner().partition(tuples, 8, INFO))
    assert pk5_q.bsi < hash_q.bsi


def test_pk_picks_least_loaded_candidate():
    part = KeySplitPartitioner(d=2)
    cands = candidate_buckets("hot", 4, 2)
    # preload one candidate with another key's tuples
    other_key = next(
        f"fill{i}"
        for i in range(1000)
        if hash_to_bucket(f"fill{i}", 4, seed=1) == cands[0]
        and candidate_buckets(f"fill{i}", 4, 2)[0] == cands[0]
    )
    tuples = [StreamTuple(ts=0.0, key=other_key) for _ in range(10)]
    tuples.append(StreamTuple(ts=0.5, key="hot"))
    batch = part.partition(tuples, 4, INFO)
    if cands[0] != cands[1]:
        assert "hot" in batch.blocks[cands[1]]


def test_key_split_rejects_bad_d():
    with pytest.raises(ValueError):
        KeySplitPartitioner(d=0)


def test_pk_reset_clears_candidate_cache():
    part = PK2Partitioner()
    part.partition([StreamTuple(ts=0.0, key="a")], 4, INFO)
    assert part._candidate_cache
    part.reset()
    assert not part._candidate_cache


# ----------------------------------------------------------------------
# cAM
# ----------------------------------------------------------------------
def test_cam_prefers_blocks_already_holding_key():
    part = CAMPartitioner(d=4, gamma=5.0)
    # background volume so the normalized size term is small relative to
    # the cardinality penalty, then a moderate key trickles in
    tuples = make_tuples({f"bg{i}": 8 for i in range(100)}, shuffle_seed=6)
    tuples += [StreamTuple(ts=0.9 + i * 1e-3, key="k") for i in range(10)]
    batch = part.partition(tuples, 8, INFO)
    # strong cardinality penalty keeps the key together
    assert "k" not in batch.split_keys


def test_cam_zero_gamma_behaves_like_key_splitting():
    tuples = make_tuples(zipfish_freqs(30, 1000), shuffle_seed=4)
    cam = CAMPartitioner(d=5, gamma=0.0).partition(tuples, 8, INFO)
    pk5 = PK5Partitioner().partition(tuples, 8, INFO)
    # same candidate machinery, size-only objective: comparable balance
    assert abs(evaluate_partition(cam).bsi - evaluate_partition(pk5).bsi) <= 30


def test_cam_balances_cardinality_better_than_pk():
    tuples = make_tuples(zipfish_freqs(200, 3000), shuffle_seed=8)
    cam_q = evaluate_partition(CAMPartitioner(d=4).partition(tuples, 8, INFO))
    pk5_q = evaluate_partition(PK5Partitioner().partition(tuples, 8, INFO))
    assert cam_q.ksr <= pk5_q.ksr


def test_cam_rejects_bad_params():
    with pytest.raises(ValueError):
        CAMPartitioner(d=0)
    with pytest.raises(ValueError):
        CAMPartitioner(gamma=-1.0)


# ----------------------------------------------------------------------
# shared streaming-partitioner behaviour
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "factory",
    [TimeBasedPartitioner, ShufflePartitioner, HashPartitioner,
     PK2Partitioner, PK5Partitioner, CAMPartitioner],
)
def test_streaming_partitioners_place_every_tuple(factory):
    part = factory()
    tuples = make_tuples(zipfish_freqs(25, 300), shuffle_seed=2)
    batch = part.partition(tuples, 5, INFO)
    batch.validate(expected_tuples=len(tuples))


@pytest.mark.parametrize(
    "factory",
    [TimeBasedPartitioner, ShufflePartitioner, HashPartitioner,
     PK2Partitioner, PK5Partitioner, CAMPartitioner],
)
def test_streaming_partitioners_reject_zero_blocks(factory):
    with pytest.raises(ValueError):
        factory().partition([StreamTuple(ts=0.0, key="a")], 0, INFO)
