"""SynD: the synthetic Zipf dataset (Section 7.1, Table 1).

"SynD is a synthetic dataset generated using keys drawn from the Zipf
distribution with exponent values z in {0.1, ..., 2.0} and distinct
keys up to 1e7."  Figure 11d sweeps the exponent to measure robustness
against data skew.  Values carry no payload (the WordCount/TopK queries
only count occurrences).
"""

from __future__ import annotations

from .arrival import ArrivalProcess, ConstantRate
from .source import DatasetProperties, ZipfKeyedSource

__all__ = ["synd_source", "SYND_EXPONENTS"]

#: The paper's skew sweep (Figure 11d x-axis).
SYND_EXPONENTS: tuple[float, ...] = (0.2, 0.6, 1.0, 1.4, 1.8, 2.0)

_PROPERTIES = DatasetProperties(
    name="SynD",
    paper_size="40GB",
    paper_cardinality="500k-1M",
    scaled_cardinality=0,  # filled per instance
    description="Synthetic Zipf-keyed stream; exponent controls skew.",
)


def synd_source(
    exponent: float,
    *,
    num_keys: int = 20_000,
    arrival: ArrivalProcess | None = None,
    rate: float = 10_000.0,
    seed: int = 0,
) -> ZipfKeyedSource:
    """Build a SynD stream with the given Zipf exponent.

    ``num_keys`` defaults to a laptop-scale 20k universe (the paper uses
    up to 1e7; the skew *shape*, which drives every result, is set by
    the exponent, not the universe size).
    """
    if arrival is None:
        arrival = ConstantRate(rate)
    props = DatasetProperties(
        name=_PROPERTIES.name,
        paper_size=_PROPERTIES.paper_size,
        paper_cardinality=_PROPERTIES.paper_cardinality,
        scaled_cardinality=num_keys,
        description=_PROPERTIES.description,
    )
    return ZipfKeyedSource(
        name=f"synd-z{exponent:g}",
        arrival=arrival,
        num_keys=num_keys,
        exponent=exponent,
        seed=seed,
        dataset=props,
    )
