"""TPC-H streaming queries over LineItem (Section 7.1).

"Table LineItem tracks recent orders, and TPCH Queries 1 and 6 are to
generate Order Summary Reports, e.g., Query 1: Get the quantity of each
Part-ID ordered over the past 1 hr with a slide-window of 1 min."

LineItem tuples are keyed by part id with value
``(quantity, extendedprice, discount)``.

- *Q1*: total quantity per part over the window.
- *Q6*: discounted revenue ``extendedprice * discount`` per part,
  restricted to the classic Q6 predicate band
  (``0.05 <= discount <= 0.07`` and ``quantity < 24``) — this exercises
  the Map stage's *filter* path (tuples outside the band are scanned
  but emit nothing).
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.tuples import Key
from .base import Query, SumAggregator, WindowSpec

__all__ = ["tpch_query1", "tpch_query6"]


def _quantity(key: Key, value: Any) -> float:
    return value[0]


def _q6_revenue(key: Key, value: Any) -> Optional[float]:
    quantity, price, discount = value
    if quantity < 24 and 0.05 <= discount <= 0.07:
        return price * discount
    return None


def tpch_query1(time_scale: float = 1 / 600.0) -> Query:
    """Quantity per part; paper window 1 h / slide 1 min, scaled."""
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    return Query(
        name="tpch-q1",
        aggregator=SumAggregator(),
        window=WindowSpec(length=3600.0 * time_scale, slide=60.0 * time_scale),
        map_fn=_quantity,
    )


def tpch_query6(time_scale: float = 1 / 600.0) -> Query:
    """Discounted revenue per part under the Q6 predicate, scaled window."""
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    return Query(
        name="tpch-q6",
        aggregator=SumAggregator(),
        window=WindowSpec(length=3600.0 * time_scale, slide=60.0 * time_scale),
        map_fn=_q6_revenue,
    )
