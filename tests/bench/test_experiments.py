"""Tiny-scale runs of every experiment, pinning the qualitative shapes."""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    FIG5_EXAMPLE,
    fig6_assignment_tradeoffs,
    fig10_partition_metrics,
    fig11_throughput_vs_interval,
    fig11d_skew_sweep,
    fig12_elasticity,
    fig13_latency_distribution,
    fig14a_post_sort_throughput,
    fig14b_partition_overhead,
    table1_dataset_stats,
)


def test_table1_lists_all_five_datasets():
    rows = table1_dataset_stats(rate=2000.0, sample_seconds=0.5)
    assert [r["Name"] for r in rows] == ["Tweets", "SynD", "DEBS", "GCM", "TPC-H"]
    for row in rows:
        assert row["SampledTuples"] == 1000
        assert 0 < row["SampledDistinctKeys"] <= row["SampledTuples"]


def test_fig5_example_totals():
    assert sum(s for _, s in FIG5_EXAMPLE) == 385
    assert len(FIG5_EXAMPLE) == 8


def test_fig6_prompt_balances_cardinality_best():
    rows = fig6_assignment_tradeoffs()
    by_name = {r["Strategy"]: r for r in rows}
    prompt = by_name["Prompt (Algorithm 2)"]
    fragmin = by_name["FragmentationMinimization"]
    prompt_spread = max(prompt["BinCardinalities"]) - min(prompt["BinCardinalities"])
    fragmin_spread = max(fragmin["BinCardinalities"]) - min(fragmin["BinCardinalities"])
    assert prompt_spread < fragmin_spread
    assert prompt["FragmentedKeys"] <= by_name["FirstFitDecreasing"]["FragmentedKeys"]


@pytest.mark.parametrize("dataset", ["tweets", "tpch"])
def test_fig10_prompt_wins_both_metrics(dataset):
    rows = fig10_partition_metrics(
        dataset, num_blocks=8, rate=4000.0, techniques=("shuffle", "hash", "prompt")
    )
    by_name = {r["Technique"]: r for r in rows}
    # BSI: prompt ~ shuffle, far below hash (relative ~0)
    assert by_name["prompt"]["BSI_rel_hash"] <= 0.2
    assert by_name["shuffle"]["BSI_rel_hash"] <= 0.2
    # BCI: prompt at or below shuffle's level; KSR near hash's ideal
    assert by_name["prompt"]["BCI_rel_shuffle"] <= 1.5
    assert by_name["prompt"]["KSR"] <= 1.3


def test_fig11_prompt_at_least_matches_best_baseline():
    rows = fig11_throughput_vs_interval(
        intervals=(1.0,),
        techniques=("time", "hash", "prompt"),
        num_batches=3,
        num_keys=2_000,
        tolerance=0.2,
        initial_rate=4_000.0,
    )
    by_name = {r["Technique"]: r["MaxThroughput"] for r in rows}
    assert by_name["prompt"] >= by_name["hash"]
    assert by_name["prompt"] >= 0.9 * by_name["time"]


def test_fig11d_hash_degrades_with_skew_prompt_does_not():
    rows = fig11d_skew_sweep(
        exponents=(0.4, 1.6),
        techniques=("hash", "prompt"),
        batch_interval=1.0,
        num_batches=3,
        num_keys=2_000,
        tolerance=0.2,
        initial_rate=4_000.0,
    )
    get = lambda z, t: next(
        r["MaxThroughput"] for r in rows if r["Zipf_z"] == z and r["Technique"] == t
    )
    # prompt beats hash clearly under strong skew
    assert get(1.6, "prompt") > 1.3 * get(1.6, "hash")


def test_fig12_scale_out_adds_tasks():
    result = fig12_elasticity(
        direction="out", num_batches=16, low_rate=1_000.0, high_rate=9_000.0,
        low_keys=100, high_keys=1_000,
    )
    series = result["series"]
    assert series[-1]["MapTasks"] > series[0]["MapTasks"]
    assert result["actions"]


def test_fig12_scale_in_removes_tasks():
    result = fig12_elasticity(
        direction="in", num_batches=16, low_rate=1_000.0, high_rate=9_000.0,
        low_keys=100, high_keys=1_000,
    )
    series = result["series"]
    assert series[-1]["MapTasks"] < series[0]["MapTasks"]


def test_fig12_rejects_bad_direction():
    with pytest.raises(ValueError):
        fig12_elasticity(direction="sideways")


def test_fig13_prompt_tightens_reduce_spread():
    out = fig13_latency_distribution(
        num_batches=10, rate=6_000.0, exponent=1.2,
    )
    time_based = out["techniques"]["time"]
    prompt = out["techniques"]["prompt"]
    assert prompt["mean_spread"] <= time_based["mean_spread"]
    assert len(prompt["series"]) == 10


def test_fig14a_post_sort_loses_throughput():
    rows = fig14a_post_sort_throughput(
        num_batches=3, num_keys=20_000, exponent=0.4,
        tolerance=0.15, initial_rate=4_000.0,
    )
    by_name = {r["Technique"]: r["MaxThroughput"] for r in rows}
    assert by_name["prompt"] >= by_name["prompt-postsort"]


def test_fig14b_overhead_below_slack_budget():
    rows = fig14b_partition_overhead(rates=(2_000.0, 5_000.0))
    for row in rows:
        assert row["OverheadPct"] < 5.0, row
        assert row["BatchTuples"] > 0
