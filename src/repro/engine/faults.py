"""Failure injection and exactly-once recovery.

Section 8: "Exactly-once semantics is guaranteed by initially
replicating the input batch. ... In case of losing a batch's state due
to hardware failure, this state is recomputed using the replicated
batched data."  Two granularities of failure are modelled:

- **Batch-state loss** (:class:`FailureInjector`): a batch's output
  vanishes after it was computed; recovery recomputes it from the
  replicated input and must be byte-identical to the lost original —
  the exactly-once property the tests assert.
- **Task-attempt faults** (:class:`TaskFaultInjector`): an individual
  Map/Reduce task *attempt* crashes, stalls, or kills its worker
  process mid-batch.  The parallel execution backend
  (:mod:`repro.engine.executors`) re-executes the task from its
  replicated input — the pickled payload it already holds — under the
  exact same :func:`~repro.engine.tasks.derive_task_seed` seed, so a
  retried task is indistinguishable from a first-try success and runs
  with injected task faults stay bit-identical to clean serial runs.

Task faults are keyed on ``(batch_index, kind, task_id)`` and gated on
the *attempt* number, which makes every injected failure deterministic:
attempt 0 of a task configured with ``crashes=1`` always raises,
attempt 1 always succeeds, in any process and on any backend schedule.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping, Optional

from ..core.tuples import Key
from ..queries.base import Query
from .state import StateStore

__all__ = [
    "FailureInjector",
    "RecoveryEvent",
    "recover_batch",
    "TransientTaskError",
    "InjectedTaskFault",
    "TaskFault",
    "TaskFaultInjector",
    "TASK_KINDS",
]

#: the two task kinds the execution layer dispatches
TASK_KINDS: tuple[str, ...] = ("map", "reduce")

log = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class RecoveryEvent:
    """Record of one state loss and its recomputation."""

    batch_index: int
    recovered_keys: int
    matched_original: bool


def recover_batch(
    store: StateStore, index: int, query: Query
) -> Mapping[Key, Any]:
    """Recompute a lost batch state from its replicated input."""
    state = store.get(index)
    if not state.recoverable:
        raise RuntimeError(
            f"batch {index} has no replicated input; state is unrecoverable"
        )
    output = query.reference_output(state.replicated_input)
    store.restore(index, output)
    log.info("recovered batch %d state from replicated input (%d keys)",
             index, len(output))
    return output


class FailureInjector:
    """Deterministically fails the states of the configured batches."""

    def __init__(self, fail_batches: Iterable[int] = ()) -> None:
        self.fail_batches = frozenset(fail_batches)
        self.events: list[RecoveryEvent] = []

    def should_fail(self, index: int) -> bool:
        return index in self.fail_batches

    def fail_and_recover(
        self, store: StateStore, index: int, query: Query
    ) -> RecoveryEvent:
        """Drop batch ``index``'s output, recompute it, verify equality."""
        original = dict(store.get(index).output)
        store.drop_output(index)
        recovered = recover_batch(store, index, query)
        event = RecoveryEvent(
            batch_index=index,
            recovered_keys=len(recovered),
            matched_original=dict(recovered) == original,
        )
        if not event.matched_original:
            log.error(
                "recovered state for batch %d does not match the lost "
                "original — exactly-once violated", index,
            )
        self.events.append(event)
        return event


# ----------------------------------------------------------------------
# task-level fault injection (parallel backend)
# ----------------------------------------------------------------------
class TransientTaskError(RuntimeError):
    """A task failure the execution backend may safely retry.

    Raise this (or a subclass) from task code to signal a transient
    condition — the parallel backend re-executes the attempt from its
    replicated payload instead of propagating.  Non-transient exceptions
    (application bugs) always propagate unchanged.
    """


class InjectedTaskFault(TransientTaskError):
    """The synthetic crash a :class:`TaskFault` raises in a worker."""


@dataclass(frozen=True, slots=True)
class TaskFault:
    """Deterministic fault plan for one ``(batch, kind, task)`` coordinate.

    Each field gates on the attempt number, so the plan is a pure
    function of ``attempt`` — no cross-process state needed:

    - ``crashes``: attempts ``0..crashes-1`` raise :class:`InjectedTaskFault`.
    - ``poisons``: attempts ``0..poisons-1`` kill the whole worker
      process (``os._exit``), breaking the pool — the way to exercise
      pool resurrection without real hardware failures.
    - ``delay``/``delay_attempts``: attempts ``0..delay_attempts-1``
      sleep ``delay`` real seconds first — the way to manufacture
      stragglers for timeout/speculation testing.

    Poison is checked first (a dead process can't sleep), then delay,
    then crash, so a fault can model a slow-then-failing attempt.
    """

    crashes: int = 0
    poisons: int = 0
    delay: float = 0.0
    delay_attempts: int = 1

    def __post_init__(self) -> None:
        if self.crashes < 0 or self.poisons < 0 or self.delay_attempts < 0:
            raise ValueError("fault attempt counts must be >= 0")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")

    def apply(self, attempt: int) -> None:
        """Inflict this fault on attempt ``attempt`` (runs in the worker)."""
        if attempt < self.poisons:
            os._exit(86)  # hard kill: no atexit, no cleanup — a real crash
        if self.delay > 0 and attempt < self.delay_attempts:
            time.sleep(self.delay)
        if attempt < self.crashes:
            raise InjectedTaskFault(
                f"injected fault: attempt {attempt} of {self.crashes} doomed"
            )


class TaskFaultInjector:
    """Deterministically faults chosen task attempts of a parallel run.

    Faults are registered per ``(batch_index, kind, task_id)`` and
    shipped *inside* the task payload, so they fire in the worker
    process that actually runs the attempt — under any start method and
    any scheduling order.  The injector object itself stays on the
    driver; only the small frozen :class:`TaskFault` records travel.
    """

    def __init__(self, *, shard: Optional[int] = None) -> None:
        self._faults: dict[tuple[int, str, int], TaskFault] = {}
        #: shard-scoped profile: ``None`` applies everywhere, an int
        #: confines the whole fault table to that shard of a sharded run
        #: (single-engine runs ignore the scope entirely)
        self.shard = shard

    def __len__(self) -> int:
        return len(self._faults)

    def for_shard(self, shard: int) -> "TaskFaultInjector":
        """Scope this injector's faults to one shard of a sharded run."""
        if shard < 0:
            raise ValueError(f"shard must be >= 0, got {shard}")
        self.shard = shard
        return self

    def applies_to_shard(self, shard: int) -> bool:
        """Whether this injector's fault table is live on ``shard``."""
        return self.shard is None or self.shard == shard

    @staticmethod
    def _check(kind: str, times: int) -> None:
        if kind not in TASK_KINDS:
            raise ValueError(f"kind must be one of {TASK_KINDS}, got {kind!r}")
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")

    def _merge(self, key: tuple[int, str, int], **changes: Any) -> None:
        self._faults[key] = replace(self._faults.get(key, TaskFault()), **changes)
        log.debug("registered task fault %s: %s", key, self._faults[key])

    def crash(
        self, batch_index: int, kind: str, task_id: int, *, times: int = 1
    ) -> "TaskFaultInjector":
        """Make the first ``times`` attempts raise :class:`InjectedTaskFault`."""
        self._check(kind, times)
        self._merge((batch_index, kind, task_id), crashes=times)
        return self

    def poison(
        self, batch_index: int, kind: str, task_id: int, *, times: int = 1
    ) -> "TaskFaultInjector":
        """Make the first ``times`` attempts kill their worker process."""
        self._check(kind, times)
        self._merge((batch_index, kind, task_id), poisons=times)
        return self

    def delay(
        self,
        batch_index: int,
        kind: str,
        task_id: int,
        *,
        seconds: float,
        attempts: int = 1,
    ) -> "TaskFaultInjector":
        """Make the first ``attempts`` attempts sleep ``seconds`` first."""
        self._check(kind, attempts)
        if seconds <= 0:
            raise ValueError(f"seconds must be > 0, got {seconds}")
        self._merge(
            (batch_index, kind, task_id), delay=seconds, delay_attempts=attempts
        )
        return self

    def fault_for(
        self, batch_index: int, kind: str, task_id: int
    ) -> Optional[TaskFault]:
        """The fault plan for one coordinate, or ``None``."""
        return self._faults.get((batch_index, kind, task_id))

    def snapshot(self) -> dict[tuple[int, str, int], TaskFault]:
        """A copy of the full fault table, keyed by coordinate.

        The worker-resident :class:`~repro.engine.executors.RunContext`
        broadcasts this once per pool generation so workers can look up
        their own faults instead of receiving them per payload; it is a
        copy, so later ``crash``/``poison``/``delay`` registrations
        cannot mutate an already-installed generation behind its back.
        """
        return dict(self._faults)
