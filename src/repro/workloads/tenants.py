"""Multi-tenant stream wrappers for the sharded topology.

A *tenant* is an isolated logical stream sharing the physical pipeline:
every tuple's key is tagged ``(tenant, key)`` so per-tenant answers stay
disjoint no matter which engine processes them.  Two wrappers implement
the tagging:

- :class:`TenantTaggedSource` wraps one tenant's source — the reference
  stream the sharding differential suite compares against.
- :class:`MultiTenantSource` interleaves all tenants into the union
  stream a :class:`~repro.engine.sharding.ShardedEngine` consumes.

The interleave is deterministic: tuples merge by ``(timestamp, tenant
position, arrival order)``, so the union stream replays bit-identically
after ``reset()`` — the property the sharded-vs-single differential
contract rests on.  A tenant's slice of the union is *exactly* the
stream its :class:`TenantTaggedSource` produces, because both pull the
underlying source over the same interval sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..core.tuples import StreamTuple
from .source import StreamSource

__all__ = [
    "MultiTenantSource",
    "TenantStream",
    "TenantTaggedSource",
    "tenant_of",
]


def tenant_of(key: Hashable) -> Hashable:
    """The tenant component of a tagged ``(tenant, key)`` key."""
    if not isinstance(key, tuple) or len(key) != 2:
        raise ValueError(
            f"expected a (tenant, key) tagged key, got {key!r} — "
            "wrap sources in MultiTenantSource/TenantTaggedSource first"
        )
    return key[0]


def _tag(tenant: Hashable, t: StreamTuple) -> StreamTuple:
    return StreamTuple(
        ts=t.ts, key=(tenant, t.key), value=t.value, weight=t.weight
    )


@dataclass(frozen=True)
class TenantStream:
    """One tenant's identity and its private stream."""

    tenant: Hashable
    source: StreamSource


class TenantTaggedSource(StreamSource):
    """One tenant's source with every key tagged ``(tenant, key)``.

    This is the single-engine reference stream: running it alone must
    produce, per window, exactly the tenant's slice of a sharded run
    over the union.
    """

    def __init__(self, tenant: Hashable, source: StreamSource) -> None:
        self.tenant = tenant
        self.source = source
        self.name = f"tenant[{tenant}]:{source.name}"

    def tuples_between(self, t0: float, t1: float) -> list[StreamTuple]:
        return [_tag(self.tenant, t) for t in self.source.tuples_between(t0, t1)]

    def reset(self) -> None:
        self.source.reset()


class MultiTenantSource(StreamSource):
    """The union stream: all tenants' tuples, tagged and interleaved.

    Merge order is ``(timestamp, tenant position, arrival order)`` —
    fully determined by the tenant list and the per-tenant seeds, so the
    union replays identically after ``reset()``.  Per-tenant generator
    state advances exactly as it would standalone: each underlying
    source is pulled once per interval, over the same ``[t0, t1)``
    sequence the engine would use for a single-tenant run.
    """

    def __init__(self, tenants: Sequence[TenantStream]) -> None:
        if not tenants:
            raise ValueError("MultiTenantSource needs at least one tenant")
        ids = [t.tenant for t in tenants]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate tenant ids in {ids!r}")
        self.tenants = tuple(tenants)
        self.tenant_ids = tuple(ids)
        self.name = "multitenant[" + ",".join(str(i) for i in ids) + "]"

    def tuples_between(self, t0: float, t1: float) -> list[StreamTuple]:
        entries: list[tuple[float, int, int, StreamTuple]] = []
        for pos, stream in enumerate(self.tenants):
            for seq, t in enumerate(stream.source.tuples_between(t0, t1)):
                entries.append((t.ts, pos, seq, _tag(stream.tenant, t)))
        entries.sort(key=lambda e: (e[0], e[1], e[2]))
        return [e[3] for e in entries]

    def reset(self) -> None:
        for stream in self.tenants:
            stream.source.reset()
